package interp

import (
	"repro/internal/value"
)

// This file implements the ES collection and async builtins the corpus and
// real-world-style code occasionally touch: Date (deterministic), Map, Set,
// and a minimal synchronous Promise.
//
// Promises resolve synchronously: executor and then/catch callbacks run
// immediately. There is no event loop — the interpreter is deterministic
// and single-threaded by design (approximate interpretation depends on
// replayable executions), so "microtask later" and "now" are
// indistinguishable to the analyses.

// mapEntry is one key/value pair of a Map (insertion-ordered; keys compared
// with StrictEquals like SameValueZero minus the NaN nuance).
type mapEntry struct {
	key, val value.Value
}

// mapData is attached to Map/Set objects through the host-data slot.
type mapData struct {
	entries []mapEntry
	isSet   bool
}

func (m *mapData) find(key value.Value) int {
	for i, e := range m.entries {
		if value.StrictEquals(e.key, key) {
			return i
		}
	}
	return -1
}

func (it *Interp) setupCollections(def func(string, value.Value)) {
	it.setupDate(def)
	it.setupMapSet(def)
	it.setupPromise(def)
}

// ---------------------------------------------------------------------- Date

func (it *Interp) setupDate(def func(string, value.Value)) {
	dateProto := value.NewObject(it.protos.object)
	ctor := it.native("Date", func(this value.Value, args []value.Value) (value.Value, error) {
		obj, ok := this.(*value.Object)
		if !ok || obj.IsProxy() || obj.Callable() {
			obj = value.NewObject(dateProto)
		}
		// The clock is a deterministic counter: each construction advances
		// one second, so ordering-sensitive code works reproducibly.
		var t float64
		if len(args) > 0 {
			t = value.ToNumber(args[0])
		} else {
			it.clock += 1000
			t = float64(it.clock)
		}
		obj.Set("_t", value.Number(t))
		return obj, nil
	})
	ctor.Set("prototype", dateProto)
	it.method(ctor, "now", func(_ value.Value, args []value.Value) (value.Value, error) {
		it.clock += 1000
		return value.Number(float64(it.clock)), nil
	})
	timeOf := func(this value.Value) float64 {
		if o, ok := this.(*value.Object); ok {
			if p := o.GetOwn("_t"); p != nil && !p.IsAccessor() {
				return value.ToNumber(p.Value)
			}
		}
		return 0
	}
	it.method(dateProto, "getTime", func(this value.Value, args []value.Value) (value.Value, error) {
		return value.Number(timeOf(this)), nil
	})
	it.method(dateProto, "valueOf", func(this value.Value, args []value.Value) (value.Value, error) {
		return value.Number(timeOf(this)), nil
	})
	it.method(dateProto, "toISOString", func(this value.Value, args []value.Value) (value.Value, error) {
		// A stable, fake-but-well-formed rendering keyed by the counter.
		return value.String(value.FormatNumber(timeOf(this)) + "ms-since-epoch"), nil
	})
	it.method(dateProto, "toString", func(this value.Value, args []value.Value) (value.Value, error) {
		return value.String("[Date " + value.FormatNumber(timeOf(this)) + "]"), nil
	})
	def("Date", ctor)
}

// ------------------------------------------------------------------ Map/Set

func (it *Interp) setupMapSet(def func(string, value.Value)) {
	mapProto := value.NewObject(it.protos.object)
	setProto := value.NewObject(it.protos.object)

	dataOf := func(this value.Value) *mapData {
		o, ok := this.(*value.Object)
		if !ok {
			return nil
		}
		d, _ := o.HostData.(*mapData)
		return d
	}

	makeCtor := func(name string, proto *value.Object, isSet bool) *value.Object {
		ctor := it.native(name, func(this value.Value, args []value.Value) (value.Value, error) {
			obj, ok := this.(*value.Object)
			if !ok || obj.IsProxy() || obj.Callable() {
				obj = value.NewObject(proto)
			}
			d := &mapData{isSet: isSet}
			obj.HostData = d
			// Seed from an array argument: [[k, v], …] for Map, [v, …] for Set.
			if seed, ok := arg(args, 0).(*value.Object); ok && seed.Class == value.ClassArray {
				for _, e := range seed.Elems {
					if e == nil {
						continue
					}
					if isSet {
						if d.find(e) < 0 {
							d.entries = append(d.entries, mapEntry{key: e, val: e})
						}
						continue
					}
					if pair, ok := e.(*value.Object); ok && pair.Class == value.ClassArray && len(pair.Elems) >= 2 {
						if i := d.find(pair.Elems[0]); i >= 0 {
							d.entries[i].val = pair.Elems[1]
						} else {
							d.entries = append(d.entries, mapEntry{key: pair.Elems[0], val: pair.Elems[1]})
						}
					}
				}
			}
			return obj, nil
		})
		ctor.Set("prototype", proto)
		return ctor
	}

	sizeGetter := func(this value.Value, args []value.Value) (value.Value, error) {
		if d := dataOf(this); d != nil {
			return value.Number(len(d.entries)), nil
		}
		return value.Number(0), nil
	}

	for _, proto := range []*value.Object{mapProto, setProto} {
		proto.DefineProp("size", &value.Prop{Getter: it.native("size", sizeGetter)})
		it.method(proto, "has", func(this value.Value, args []value.Value) (value.Value, error) {
			d := dataOf(this)
			return value.Bool(d != nil && d.find(arg(args, 0)) >= 0), nil
		})
		it.method(proto, "delete", func(this value.Value, args []value.Value) (value.Value, error) {
			d := dataOf(this)
			if d == nil {
				return value.Bool(false), nil
			}
			i := d.find(arg(args, 0))
			if i < 0 {
				return value.Bool(false), nil
			}
			d.entries = append(d.entries[:i], d.entries[i+1:]...)
			return value.Bool(true), nil
		})
		it.method(proto, "clear", func(this value.Value, args []value.Value) (value.Value, error) {
			if d := dataOf(this); d != nil {
				d.entries = nil
			}
			return value.Undefined{}, nil
		})
		it.method(proto, "forEach", func(this value.Value, args []value.Value) (value.Value, error) {
			d := dataOf(this)
			fn := argFn(args, 0)
			if d == nil || fn == nil {
				return value.Undefined{}, nil
			}
			for _, e := range append([]mapEntry{}, d.entries...) {
				if _, err := it.CallWithSite(fn, arg(args, 1),
					[]value.Value{e.val, e.key, this}, it.CallSite()); err != nil {
					return nil, err
				}
			}
			return value.Undefined{}, nil
		})
	}

	it.method(mapProto, "get", func(this value.Value, args []value.Value) (value.Value, error) {
		d := dataOf(this)
		if d == nil {
			return value.Undefined{}, nil
		}
		if i := d.find(arg(args, 0)); i >= 0 {
			return d.entries[i].val, nil
		}
		return value.Undefined{}, nil
	})
	it.method(mapProto, "set", func(this value.Value, args []value.Value) (value.Value, error) {
		d := dataOf(this)
		if d == nil {
			return this, nil
		}
		k, v := arg(args, 0), arg(args, 1)
		if i := d.find(k); i >= 0 {
			d.entries[i].val = v
		} else {
			d.entries = append(d.entries, mapEntry{key: k, val: v})
		}
		return this, nil
	})
	it.method(mapProto, "keys", func(this value.Value, args []value.Value) (value.Value, error) {
		d := dataOf(this)
		var elems []value.Value
		if d != nil {
			for _, e := range d.entries {
				elems = append(elems, e.key)
			}
		}
		return it.NewArrayObject(elems), nil
	})
	it.method(mapProto, "values", func(this value.Value, args []value.Value) (value.Value, error) {
		d := dataOf(this)
		var elems []value.Value
		if d != nil {
			for _, e := range d.entries {
				elems = append(elems, e.val)
			}
		}
		return it.NewArrayObject(elems), nil
	})

	it.method(setProto, "add", func(this value.Value, args []value.Value) (value.Value, error) {
		d := dataOf(this)
		if d == nil {
			return this, nil
		}
		v := arg(args, 0)
		if d.find(v) < 0 {
			d.entries = append(d.entries, mapEntry{key: v, val: v})
		}
		return this, nil
	})
	it.method(setProto, "values", func(this value.Value, args []value.Value) (value.Value, error) {
		d := dataOf(this)
		var elems []value.Value
		if d != nil {
			for _, e := range d.entries {
				elems = append(elems, e.val)
			}
		}
		return it.NewArrayObject(elems), nil
	})

	def("Map", makeCtor("Map", mapProto, false))
	def("Set", makeCtor("Set", setProto, true))
	def("WeakMap", makeCtor("WeakMap", mapProto, false))
	def("WeakSet", makeCtor("WeakSet", setProto, true))
}

// ---------------------------------------------------------------- Promise

// promiseData tracks a synchronous promise's settled state.
type promiseData struct {
	state int // 0 pending, 1 fulfilled, 2 rejected
	val   value.Value
}

// NewSettledPromise creates a promise object already settled in the given
// state (1 fulfilled, 2 rejected); async functions use it to wrap results.
func (it *Interp) NewSettledPromise(state int, val value.Value) *value.Object {
	p := value.NewObject(it.promiseProto)
	p.HostData = &promiseData{state: state, val: val}
	return p
}

// promiseState returns the promise state of v, or nil if v is not a promise.
func (it *Interp) promiseState(v *value.Object) *promiseData {
	if v == nil {
		return nil
	}
	d, _ := v.HostData.(*promiseData)
	return d
}

func (it *Interp) setupPromise(def func(string, value.Value)) {
	promiseProto := value.NewObject(it.protos.object)
	it.promiseProto = promiseProto

	dataOf := func(v value.Value) *promiseData {
		o, ok := v.(*value.Object)
		if !ok {
			return nil
		}
		d, _ := o.HostData.(*promiseData)
		return d
	}

	newPromise := func(state int, val value.Value) *value.Object {
		p := value.NewObject(promiseProto)
		p.HostData = &promiseData{state: state, val: val}
		return p
	}

	ctor := it.native("Promise", func(this value.Value, args []value.Value) (value.Value, error) {
		p := newPromise(0, value.Undefined{})
		d := dataOf(p)
		executor := argFn(args, 0)
		if executor != nil {
			resolve := it.native("resolve", func(_ value.Value, rargs []value.Value) (value.Value, error) {
				if d.state == 0 {
					d.state, d.val = 1, arg(rargs, 0)
				}
				return value.Undefined{}, nil
			})
			reject := it.native("reject", func(_ value.Value, rargs []value.Value) (value.Value, error) {
				if d.state == 0 {
					d.state, d.val = 2, arg(rargs, 0)
				}
				return value.Undefined{}, nil
			})
			if _, err := it.CallFunction(executor, value.Undefined{}, []value.Value{resolve, reject}); err != nil {
				if thrown, ok := err.(*Thrown); ok {
					if d.state == 0 {
						d.state, d.val = 2, thrown.Value
					}
				} else {
					return nil, err
				}
			}
		}
		return p, nil
	})
	ctor.Set("prototype", promiseProto)

	it.method(ctor, "resolve", func(_ value.Value, args []value.Value) (value.Value, error) {
		if d := dataOf(arg(args, 0)); d != nil {
			return arg(args, 0), nil // already a promise
		}
		return newPromise(1, arg(args, 0)), nil
	})
	it.method(ctor, "reject", func(_ value.Value, args []value.Value) (value.Value, error) {
		return newPromise(2, arg(args, 0)), nil
	})
	it.method(ctor, "all", func(_ value.Value, args []value.Value) (value.Value, error) {
		var results []value.Value
		if a, ok := arg(args, 0).(*value.Object); ok && a.Class == value.ClassArray {
			for _, e := range a.Elems {
				if d := dataOf(e); d != nil {
					if d.state == 2 {
						return newPromise(2, d.val), nil
					}
					results = append(results, d.val)
				} else {
					results = append(results, e)
				}
			}
		}
		return newPromise(1, it.NewArrayObject(results)), nil
	})

	// Combinators. Everything is already settled under the synchronous model,
	// so "first to settle" means "first settled element in array order".
	it.method(ctor, "race", func(_ value.Value, args []value.Value) (value.Value, error) {
		if a, ok := arg(args, 0).(*value.Object); ok && a.Class == value.ClassArray {
			for _, e := range a.Elems {
				if e == nil {
					e = value.Undefined{}
				}
				if d := dataOf(e); d != nil {
					if d.state != 0 {
						return newPromise(d.state, d.val), nil
					}
					continue // pending elements never win
				}
				return newPromise(1, e), nil
			}
		}
		return newPromise(0, value.Undefined{}), nil
	})
	it.method(ctor, "allSettled", func(_ value.Value, args []value.Value) (value.Value, error) {
		var results []value.Value
		if a, ok := arg(args, 0).(*value.Object); ok && a.Class == value.ClassArray {
			for _, e := range a.Elems {
				if e == nil {
					e = value.Undefined{}
				}
				entry := it.NewPlainObject()
				if d := dataOf(e); d != nil && d.state == 2 {
					entry.Set("status", value.String("rejected"))
					entry.Set("reason", d.val)
				} else {
					entry.Set("status", value.String("fulfilled"))
					if d != nil {
						// A pending promise has no value to report; the
						// synchronous model settles it as undefined.
						if d.state == 1 {
							entry.Set("value", d.val)
						} else {
							entry.Set("value", value.Undefined{})
						}
					} else {
						entry.Set("value", e)
					}
				}
				results = append(results, entry)
			}
		}
		return newPromise(1, it.NewArrayObject(results)), nil
	})
	it.method(ctor, "any", func(_ value.Value, args []value.Value) (value.Value, error) {
		var reasons []value.Value
		if a, ok := arg(args, 0).(*value.Object); ok && a.Class == value.ClassArray {
			for _, e := range a.Elems {
				if e == nil {
					e = value.Undefined{}
				}
				if d := dataOf(e); d != nil {
					switch d.state {
					case 1:
						return newPromise(1, d.val), nil
					case 2:
						reasons = append(reasons, d.val)
					}
					continue
				}
				return newPromise(1, e), nil
			}
		}
		agg := it.NewError("AggregateError", "all promises were rejected")
		agg.Set("errors", it.NewArrayObject(reasons))
		return newPromise(2, agg), nil
	})

	settle := func(p value.Value, cb *value.Object, want int) (value.Value, error) {
		d := dataOf(p)
		if d == nil {
			return newPromise(1, value.Undefined{}), nil
		}
		if d.state != want || cb == nil {
			// Pass the state through unchanged.
			return newPromise(d.state, d.val), nil
		}
		out, err := it.CallWithSite(cb, value.Undefined{}, []value.Value{d.val}, it.CallSite())
		if err != nil {
			if thrown, ok := err.(*Thrown); ok {
				return newPromise(2, thrown.Value), nil
			}
			return nil, err
		}
		if inner := dataOf(out); inner != nil {
			return out, nil // chained promise
		}
		return newPromise(1, out), nil
	}

	it.method(promiseProto, "then", func(this value.Value, args []value.Value) (value.Value, error) {
		d := dataOf(this)
		if d != nil && d.state == 2 {
			if onRej := argFn(args, 1); onRej != nil {
				return settle(this, onRej, 2)
			}
			return newPromise(2, d.val), nil
		}
		return settle(this, argFn(args, 0), 1)
	})
	it.method(promiseProto, "catch", func(this value.Value, args []value.Value) (value.Value, error) {
		return settle(this, argFn(args, 0), 2)
	})
	it.method(promiseProto, "finally", func(this value.Value, args []value.Value) (value.Value, error) {
		if fn := argFn(args, 0); fn != nil {
			if _, err := it.CallFunction(fn, value.Undefined{}, nil); err != nil {
				return nil, err
			}
		}
		return this, nil
	})

	def("Promise", ctor)
}
