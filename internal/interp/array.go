package interp

import (
	"sort"
	"strings"

	"repro/internal/value"
)

// thisArray coerces the receiver of an Array.prototype method.
func thisArray(this value.Value) *value.Object {
	o, ok := this.(*value.Object)
	if !ok || o.Class != value.ClassArray {
		return nil
	}
	return o
}

func elemAt(a *value.Object, i int) value.Value {
	if i < 0 || i >= len(a.Elems) || a.Elems[i] == nil {
		return value.Undefined{}
	}
	return a.Elems[i]
}

func (it *Interp) setupArrayBuiltin(def func(string, value.Value)) {
	ctor := it.native("Array", func(this value.Value, args []value.Value) (value.Value, error) {
		if len(args) == 1 {
			if n, ok := args[0].(value.Number); ok {
				size := int(n)
				if size < 0 {
					size = 0
				}
				elems := make([]value.Value, size)
				for i := range elems {
					elems[i] = value.Undefined{}
				}
				arr := it.NewArrayObject(elems)
				it.recordAlloc(arr, it.CallSite())
				return arr, nil
			}
		}
		arr := it.NewArrayObject(append([]value.Value{}, args...))
		it.recordAlloc(arr, it.CallSite())
		return arr, nil
	})
	ctor.Set("prototype", it.protos.array)
	it.protos.array.DefineProp("constructor", &value.Prop{Value: ctor, Writable: true})

	it.method(ctor, "isArray", func(_ value.Value, args []value.Value) (value.Value, error) {
		o := argObj(args, 0)
		return value.Bool(o != nil && o.Class == value.ClassArray), nil
	})
	it.method(ctor, "from", func(_ value.Value, args []value.Value) (value.Value, error) {
		var elems []value.Value
		switch src := arg(args, 0).(type) {
		case *value.Object:
			if src.Class == value.ClassArray {
				elems = append(elems, src.Elems...)
			} else if lp := src.GetOwn("length"); lp != nil && !lp.IsAccessor() {
				n := int(value.ToNumber(lp.Value))
				for i := 0; i < n; i++ {
					v, err := it.getMember(src, value.FormatNumber(float64(i)))
					if err != nil {
						return nil, err
					}
					elems = append(elems, v)
				}
			}
		case value.String:
			for _, r := range string(src) {
				elems = append(elems, value.String(string(r)))
			}
		}
		if fn := argFn(args, 1); fn != nil {
			for i, e := range elems {
				v, err := it.CallWithSite(fn, value.Undefined{}, []value.Value{e, value.Number(i)}, it.CallSite())
				if err != nil {
					return nil, err
				}
				elems[i] = v
			}
		}
		arr := it.NewArrayObject(elems)
		it.recordAlloc(arr, it.CallSite())
		return arr, nil
	})
	it.method(ctor, "of", func(_ value.Value, args []value.Value) (value.Value, error) {
		arr := it.NewArrayObject(append([]value.Value{}, args...))
		it.recordAlloc(arr, it.CallSite())
		return arr, nil
	})
	def("Array", ctor)

	proto := it.protos.array

	it.method(proto, "push", func(this value.Value, args []value.Value) (value.Value, error) {
		a := thisArray(this)
		if a == nil {
			return value.Number(0), nil
		}
		a.Elems = append(a.Elems, args...)
		return value.Number(len(a.Elems)), nil
	})

	it.method(proto, "pop", func(this value.Value, args []value.Value) (value.Value, error) {
		a := thisArray(this)
		if a == nil || len(a.Elems) == 0 {
			return value.Undefined{}, nil
		}
		v := elemAt(a, len(a.Elems)-1)
		a.Elems = a.Elems[:len(a.Elems)-1]
		return v, nil
	})

	it.method(proto, "shift", func(this value.Value, args []value.Value) (value.Value, error) {
		a := thisArray(this)
		if a == nil || len(a.Elems) == 0 {
			return value.Undefined{}, nil
		}
		v := elemAt(a, 0)
		a.Elems = a.Elems[1:]
		return v, nil
	})

	it.method(proto, "unshift", func(this value.Value, args []value.Value) (value.Value, error) {
		a := thisArray(this)
		if a == nil {
			return value.Number(0), nil
		}
		a.Elems = append(append([]value.Value{}, args...), a.Elems...)
		return value.Number(len(a.Elems)), nil
	})

	clampRange := func(a *value.Object, args []value.Value) (int, int) {
		n := len(a.Elems)
		start, end := 0, n
		if len(args) > 0 {
			if _, isU := args[0].(value.Undefined); !isU {
				start = int(value.ToNumber(args[0]))
			}
		}
		if len(args) > 1 {
			if _, isU := args[1].(value.Undefined); !isU {
				end = int(value.ToNumber(args[1]))
			}
		}
		if start < 0 {
			start += n
		}
		if end < 0 {
			end += n
		}
		if start < 0 {
			start = 0
		}
		if end > n {
			end = n
		}
		if start > end {
			start = end
		}
		return start, end
	}

	it.method(proto, "slice", func(this value.Value, args []value.Value) (value.Value, error) {
		a := thisArray(this)
		if a == nil {
			// slice.call(arguments, …) on a non-array object with length.
			if o, ok := this.(*value.Object); ok && !o.IsProxy() {
				if lp := o.GetOwn("length"); lp != nil && !lp.IsAccessor() {
					n := int(value.ToNumber(lp.Value))
					tmp := it.NewArrayObject(nil)
					for i := 0; i < n; i++ {
						v, err := it.getMember(o, value.FormatNumber(float64(i)))
						if err != nil {
							return nil, err
						}
						tmp.Elems = append(tmp.Elems, v)
					}
					a = tmp
				}
			}
			if a == nil {
				arr := it.NewArrayObject(nil)
				it.recordAlloc(arr, it.CallSite())
				return arr, nil
			}
		}
		start, end := clampRange(a, args)
		arr := it.NewArrayObject(append([]value.Value{}, a.Elems[start:end]...))
		it.recordAlloc(arr, it.CallSite())
		return arr, nil
	})

	it.method(proto, "splice", func(this value.Value, args []value.Value) (value.Value, error) {
		a := thisArray(this)
		removed := it.NewArrayObject(nil)
		it.recordAlloc(removed, it.CallSite())
		if a == nil {
			return removed, nil
		}
		n := len(a.Elems)
		start := 0
		if len(args) > 0 {
			start = int(value.ToNumber(args[0]))
		}
		if start < 0 {
			start += n
		}
		if start < 0 {
			start = 0
		}
		if start > n {
			start = n
		}
		delCount := n - start
		if len(args) > 1 {
			delCount = int(value.ToNumber(args[1]))
		}
		if delCount < 0 {
			delCount = 0
		}
		if start+delCount > n {
			delCount = n - start
		}
		removed.Elems = append(removed.Elems, a.Elems[start:start+delCount]...)
		var inserted []value.Value
		if len(args) > 2 {
			inserted = args[2:]
		}
		tail := append([]value.Value{}, a.Elems[start+delCount:]...)
		a.Elems = append(append(a.Elems[:start], inserted...), tail...)
		return removed, nil
	})

	it.method(proto, "concat", func(this value.Value, args []value.Value) (value.Value, error) {
		var elems []value.Value
		if a := thisArray(this); a != nil {
			elems = append(elems, a.Elems...)
		}
		for _, x := range args {
			if xa, ok := x.(*value.Object); ok && xa.Class == value.ClassArray {
				elems = append(elems, xa.Elems...)
			} else {
				elems = append(elems, x)
			}
		}
		arr := it.NewArrayObject(elems)
		it.recordAlloc(arr, it.CallSite())
		return arr, nil
	})

	it.method(proto, "join", func(this value.Value, args []value.Value) (value.Value, error) {
		a := thisArray(this)
		if a == nil {
			return value.String(""), nil
		}
		sep := ","
		if len(args) > 0 {
			if _, isU := args[0].(value.Undefined); !isU {
				sep = value.ToString(args[0])
			}
		}
		parts := make([]string, len(a.Elems))
		for i := range a.Elems {
			e := elemAt(a, i)
			if isNullish(e) {
				parts[i] = ""
			} else {
				parts[i] = value.ToString(e)
			}
		}
		return value.String(strings.Join(parts, sep)), nil
	})

	indexOf := func(a *value.Object, needle value.Value) int {
		for i := range a.Elems {
			if value.StrictEquals(elemAt(a, i), needle) {
				return i
			}
		}
		return -1
	}

	it.method(proto, "indexOf", func(this value.Value, args []value.Value) (value.Value, error) {
		a := thisArray(this)
		if a == nil {
			return value.Number(-1), nil
		}
		return value.Number(indexOf(a, arg(args, 0))), nil
	})

	it.method(proto, "lastIndexOf", func(this value.Value, args []value.Value) (value.Value, error) {
		a := thisArray(this)
		if a == nil {
			return value.Number(-1), nil
		}
		for i := len(a.Elems) - 1; i >= 0; i-- {
			if value.StrictEquals(elemAt(a, i), arg(args, 0)) {
				return value.Number(i), nil
			}
		}
		return value.Number(-1), nil
	})

	it.method(proto, "includes", func(this value.Value, args []value.Value) (value.Value, error) {
		a := thisArray(this)
		if a == nil {
			return value.Bool(false), nil
		}
		return value.Bool(indexOf(a, arg(args, 0)) >= 0), nil
	})

	// Iteration methods invoke their callback through CallWithSite so
	// dynamic call graphs attribute the edge to the original call site.
	iterate := func(this value.Value, args []value.Value, visit func(v value.Value, i int, a *value.Object) (bool, error)) error {
		a := thisArray(this)
		if a == nil {
			return nil
		}
		for i := 0; i < len(a.Elems); i++ {
			if err := it.chargeLoop(); err != nil {
				if err == errLoopExhausted {
					return nil // forced-execution budget spent: stop iterating
				}
				return err
			}
			cont, err := visit(elemAt(a, i), i, a)
			if err != nil {
				return err
			}
			if !cont {
				return nil
			}
		}
		return nil
	}

	it.method(proto, "forEach", func(this value.Value, args []value.Value) (value.Value, error) {
		fn := argFn(args, 0)
		if fn == nil {
			return value.Undefined{}, nil
		}
		err := iterate(this, args, func(v value.Value, i int, a *value.Object) (bool, error) {
			_, err := it.CallWithSite(fn, arg(args, 1), []value.Value{v, value.Number(i), a}, it.CallSite())
			return true, err
		})
		return value.Undefined{}, err
	})

	it.method(proto, "map", func(this value.Value, args []value.Value) (value.Value, error) {
		fn := argFn(args, 0)
		out := it.NewArrayObject(nil)
		it.recordAlloc(out, it.CallSite())
		if fn == nil {
			return out, nil
		}
		err := iterate(this, args, func(v value.Value, i int, a *value.Object) (bool, error) {
			r, err := it.CallWithSite(fn, arg(args, 1), []value.Value{v, value.Number(i), a}, it.CallSite())
			if err != nil {
				return false, err
			}
			out.Elems = append(out.Elems, r)
			return true, nil
		})
		return out, err
	})

	it.method(proto, "filter", func(this value.Value, args []value.Value) (value.Value, error) {
		fn := argFn(args, 0)
		out := it.NewArrayObject(nil)
		it.recordAlloc(out, it.CallSite())
		if fn == nil {
			return out, nil
		}
		err := iterate(this, args, func(v value.Value, i int, a *value.Object) (bool, error) {
			r, err := it.CallWithSite(fn, arg(args, 1), []value.Value{v, value.Number(i), a}, it.CallSite())
			if err != nil {
				return false, err
			}
			if value.ToBool(r) {
				out.Elems = append(out.Elems, v)
			}
			return true, nil
		})
		return out, err
	})

	it.method(proto, "some", func(this value.Value, args []value.Value) (value.Value, error) {
		fn := argFn(args, 0)
		if fn == nil {
			return value.Bool(false), nil
		}
		found := false
		err := iterate(this, args, func(v value.Value, i int, a *value.Object) (bool, error) {
			r, err := it.CallWithSite(fn, arg(args, 1), []value.Value{v, value.Number(i), a}, it.CallSite())
			if err != nil {
				return false, err
			}
			if value.ToBool(r) {
				found = true
				return false, nil
			}
			return true, nil
		})
		return value.Bool(found), err
	})

	it.method(proto, "every", func(this value.Value, args []value.Value) (value.Value, error) {
		fn := argFn(args, 0)
		if fn == nil {
			return value.Bool(true), nil
		}
		all := true
		err := iterate(this, args, func(v value.Value, i int, a *value.Object) (bool, error) {
			r, err := it.CallWithSite(fn, arg(args, 1), []value.Value{v, value.Number(i), a}, it.CallSite())
			if err != nil {
				return false, err
			}
			if !value.ToBool(r) {
				all = false
				return false, nil
			}
			return true, nil
		})
		return value.Bool(all), err
	})

	it.method(proto, "find", func(this value.Value, args []value.Value) (value.Value, error) {
		fn := argFn(args, 0)
		if fn == nil {
			return value.Undefined{}, nil
		}
		var found value.Value = value.Undefined{}
		err := iterate(this, args, func(v value.Value, i int, a *value.Object) (bool, error) {
			r, err := it.CallWithSite(fn, arg(args, 1), []value.Value{v, value.Number(i), a}, it.CallSite())
			if err != nil {
				return false, err
			}
			if value.ToBool(r) {
				found = v
				return false, nil
			}
			return true, nil
		})
		return found, err
	})

	it.method(proto, "findIndex", func(this value.Value, args []value.Value) (value.Value, error) {
		fn := argFn(args, 0)
		if fn == nil {
			return value.Number(-1), nil
		}
		idx := -1
		err := iterate(this, args, func(v value.Value, i int, a *value.Object) (bool, error) {
			r, err := it.CallWithSite(fn, arg(args, 1), []value.Value{v, value.Number(i), a}, it.CallSite())
			if err != nil {
				return false, err
			}
			if value.ToBool(r) {
				idx = i
				return false, nil
			}
			return true, nil
		})
		return value.Number(idx), err
	})

	it.method(proto, "reduce", func(this value.Value, args []value.Value) (value.Value, error) {
		fn := argFn(args, 0)
		a := thisArray(this)
		if fn == nil || a == nil {
			return arg(args, 1), nil
		}
		var acc value.Value
		start := 0
		if len(args) > 1 {
			acc = args[1]
		} else {
			if len(a.Elems) == 0 {
				return nil, it.ThrowError("TypeError", "reduce of empty array with no initial value")
			}
			acc = elemAt(a, 0)
			start = 1
		}
		for i := start; i < len(a.Elems); i++ {
			if err := it.chargeLoop(); err != nil {
				if err == errLoopExhausted {
					return acc, nil // forced-execution budget spent: stop folding
				}
				return nil, err
			}
			r, err := it.CallWithSite(fn, value.Undefined{}, []value.Value{acc, elemAt(a, i), value.Number(i), a}, it.CallSite())
			if err != nil {
				return nil, err
			}
			acc = r
		}
		return acc, nil
	})

	it.method(proto, "reverse", func(this value.Value, args []value.Value) (value.Value, error) {
		a := thisArray(this)
		if a == nil {
			return this, nil
		}
		for i, j := 0, len(a.Elems)-1; i < j; i, j = i+1, j-1 {
			a.Elems[i], a.Elems[j] = a.Elems[j], a.Elems[i]
		}
		return a, nil
	})

	it.method(proto, "sort", func(this value.Value, args []value.Value) (value.Value, error) {
		a := thisArray(this)
		if a == nil {
			return this, nil
		}
		fn := argFn(args, 0)
		var sortErr error
		sort.SliceStable(a.Elems, func(i, j int) bool {
			if sortErr != nil {
				return false
			}
			x, y := elemAt(a, i), elemAt(a, j)
			if fn != nil {
				r, err := it.CallWithSite(fn, value.Undefined{}, []value.Value{x, y}, it.CallSite())
				if err != nil {
					sortErr = err
					return false
				}
				return value.ToNumber(r) < 0
			}
			return value.ToString(x) < value.ToString(y)
		})
		if sortErr != nil {
			return nil, sortErr
		}
		return a, nil
	})

	it.method(proto, "flat", func(this value.Value, args []value.Value) (value.Value, error) {
		a := thisArray(this)
		out := it.NewArrayObject(nil)
		it.recordAlloc(out, it.CallSite())
		if a == nil {
			return out, nil
		}
		for i := range a.Elems {
			e := elemAt(a, i)
			if ea, ok := e.(*value.Object); ok && ea.Class == value.ClassArray {
				out.Elems = append(out.Elems, ea.Elems...)
			} else {
				out.Elems = append(out.Elems, e)
			}
		}
		return out, nil
	})

	it.method(proto, "fill", func(this value.Value, args []value.Value) (value.Value, error) {
		a := thisArray(this)
		if a == nil {
			return this, nil
		}
		for i := range a.Elems {
			a.Elems[i] = arg(args, 0)
		}
		return a, nil
	})

	it.method(proto, "toString", func(this value.Value, args []value.Value) (value.Value, error) {
		return value.String(value.ToString(this)), nil
	})
}
