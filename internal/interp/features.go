package interp

import (
	"repro/internal/value"
)

// This file implements the feature tiers beyond the core subset: generator
// objects (the eager model — see invokeUser) and user-level Proxy/Reflect.

// ------------------------------------------------------------- generators

// genState is the host data of a generator object under the eager model:
// the body already ran, elems holds every yielded value in order, idx is
// the iteration cursor, and retVal is the body's return value (delivered
// once by the first exhausted next()).
type genState struct {
	elems   []value.Value
	idx     int
	retVal  value.Value
	retDone bool
}

func genStateOf(v value.Value) *genState {
	o, ok := v.(*value.Object)
	if !ok {
		return nil
	}
	gs, _ := o.HostData.(*genState)
	return gs
}

// yieldDelegate implements yield*: the operand's values are appended to the
// current generator's sink, and the expression evaluates to the operand's
// return value. Non-iterable operands leniently yield themselves, and p*
// yields p* (the delegated generator is unknown).
func (it *Interp) yieldDelegate(v value.Value) value.Value {
	sink := it.genSink
	push := func(vals ...value.Value) {
		if sink == nil {
			return
		}
		for _, e := range vals {
			if e == nil {
				e = value.Undefined{}
			}
			sink.elems = append(sink.elems, e)
		}
	}
	switch o := v.(type) {
	case *value.Object:
		if o.IsProxy() {
			push(o)
			return o
		}
		if gs, ok := o.HostData.(*genState); ok {
			push(gs.elems[gs.idx:]...)
			gs.idx = len(gs.elems)
			if gs.retVal != nil {
				return gs.retVal
			}
			return value.Undefined{}
		}
		if o.Class == value.ClassArray {
			push(o.Elems...)
			return value.Undefined{}
		}
	case value.String:
		for _, r := range string(o) {
			push(value.String(string(r)))
		}
		return value.Undefined{}
	}
	push(v)
	return value.Undefined{}
}

func (it *Interp) setupGenerators() {
	it.generatorProto = value.NewObject(it.protos.object)

	iterResult := func(v value.Value, done bool) *value.Object {
		res := it.NewPlainObject()
		it.recordAlloc(res, it.CallSite())
		if v == nil {
			v = value.Undefined{}
		}
		res.Set("value", v)
		res.Set("done", value.Bool(done))
		return res
	}

	it.method(it.generatorProto, "next", func(this value.Value, args []value.Value) (value.Value, error) {
		gs := genStateOf(this)
		if gs == nil {
			return iterResult(value.Undefined{}, true), nil
		}
		if gs.idx < len(gs.elems) {
			v := gs.elems[gs.idx]
			gs.idx++
			return iterResult(v, false), nil
		}
		var v value.Value = value.Undefined{}
		if !gs.retDone && gs.retVal != nil {
			v = gs.retVal
		}
		gs.retDone = true
		return iterResult(v, true), nil
	})

	it.method(it.generatorProto, "return", func(this value.Value, args []value.Value) (value.Value, error) {
		if gs := genStateOf(this); gs != nil {
			gs.idx = len(gs.elems)
			gs.retDone = true
		}
		return iterResult(arg(args, 0), true), nil
	})

	it.method(it.generatorProto, "throw", func(this value.Value, args []value.Value) (value.Value, error) {
		if gs := genStateOf(this); gs != nil {
			gs.idx = len(gs.elems)
			gs.retDone = true
		}
		return nil, &Thrown{Value: arg(args, 0)}
	})
}

// ---------------------------------------------------------- Proxy/Reflect

// userProxyData is the host data of a user-constructed Proxy (distinct from
// the approximate interpreter's p*, which is ClassProxy): operations on the
// object route through handler traps when present and forward to target
// otherwise.
type userProxyData struct {
	target  *value.Object
	handler *value.Object // nil means no traps: a pure forwarder
}

func userProxyOf(v value.Value) *userProxyData {
	o, ok := v.(*value.Object)
	if !ok {
		return nil
	}
	d, _ := o.HostData.(*userProxyData)
	return d
}

// trap returns the handler's callable trap of the given name, or nil.
func (d *userProxyData) trap(name string) *value.Object {
	if d.handler == nil {
		return nil
	}
	p, _ := d.handler.Lookup(name)
	if p == nil || p.IsAccessor() {
		return nil
	}
	if f, ok := p.Value.(*value.Object); ok && f.Callable() {
		return f
	}
	return nil
}

func (it *Interp) setupProxyReflect(def func(string, value.Value)) {
	proxyCtor := it.native("Proxy", func(this value.Value, args []value.Value) (value.Value, error) {
		target := argObj(args, 0)
		if target == nil || target.IsProxy() {
			// Unknown or primitive target: the proxy is as unknown as p*.
			return it.proxyOrUndefined(), nil
		}
		handler := argObj(args, 1)
		if handler != nil && handler.IsProxy() {
			handler = nil // unknown handler: treat as trapless forwarder
		}
		pr := value.NewObject(target.Proto)
		pr.HostData = &userProxyData{target: target, handler: handler}
		it.recordAlloc(pr, it.CallSite())
		return pr, nil
	})
	def("Proxy", proxyCtor)

	elemsOf := func(v value.Value) []value.Value {
		if a, ok := v.(*value.Object); ok && a.Class == value.ClassArray {
			out := make([]value.Value, len(a.Elems))
			for i, e := range a.Elems {
				if e == nil {
					e = value.Undefined{}
				}
				out[i] = e
			}
			return out
		}
		return nil
	}

	r := it.NewPlainObject()
	it.method(r, "apply", func(_ value.Value, args []value.Value) (value.Value, error) {
		return it.callValue(arg(args, 0), arg(args, 1), elemsOf(arg(args, 2)), it.CallSite())
	})
	it.method(r, "construct", func(_ value.Value, args []value.Value) (value.Value, error) {
		return it.Construct(arg(args, 0), elemsOf(arg(args, 1)), it.CallSite())
	})
	it.method(r, "get", func(_ value.Value, args []value.Value) (value.Value, error) {
		base := arg(args, 0)
		key := value.PropertyKey(arg(args, 1))
		v, err := it.getMemberAt(base, key, it.CallSite())
		if err != nil {
			return nil, err
		}
		it.hooks.DynamicRead(it.CallSite(), base, key, v)
		return v, nil
	})
	it.method(r, "set", func(_ value.Value, args []value.Value) (value.Value, error) {
		base := arg(args, 0)
		key := value.PropertyKey(arg(args, 1))
		if err := it.setMember(base, key, arg(args, 2), true, it.CallSite()); err != nil {
			return nil, err
		}
		return value.Bool(true), nil
	})
	it.method(r, "has", func(_ value.Value, args []value.Value) (value.Value, error) {
		return it.hasMember(arg(args, 1), arg(args, 0), it.CallSite())
	})
	it.method(r, "ownKeys", func(_ value.Value, args []value.Value) (value.Value, error) {
		o := argObj(args, 0)
		if o == nil || o.IsProxy() {
			return it.NewArrayObject(nil), nil
		}
		if up := userProxyOf(o); up != nil {
			if t := up.trap("ownKeys"); t != nil {
				v, err := it.callWithSite(t, up.handler, []value.Value{up.target}, it.CallSite())
				if err != nil {
					return nil, err
				}
				if a, ok := v.(*value.Object); ok && a.Class == value.ClassArray {
					return a, nil
				}
				return it.NewArrayObject(nil), nil
			}
			o = up.target
		}
		var elems []value.Value
		for _, k := range o.OwnKeys() {
			elems = append(elems, value.String(k))
		}
		return it.NewArrayObject(elems), nil
	})
	it.method(r, "getPrototypeOf", func(_ value.Value, args []value.Value) (value.Value, error) {
		if o := argObj(args, 0); o != nil && o.Proto != nil {
			return o.Proto, nil
		}
		return value.Null{}, nil
	})
	def("Reflect", r)
}
