package interp

import (
	"strings"
	"testing"

	"repro/internal/loc"
	"repro/internal/parser"
	"repro/internal/value"
)

// Edge-case and failure-injection tests complementing interp_test.go.

func TestStringEdgeCases(t *testing.T) {
	wantString(t, run(t, `var result = "abc".charAt(99);`), "")
	wantBool(t, run(t, `var result = isNaN("abc".charCodeAt(99));`), true)
	wantString(t, run(t, `var result = "".toUpperCase();`), "")
	wantString(t, run(t, `var result = "a".repeat(0);`), "")
	wantNumber(t, run(t, `var result = "abc".indexOf("zzz");`), -1)
	wantString(t, run(t, `var result = "a,b".split(",").concat(["c"]).join("");`), "abc")
	wantString(t, run(t, `var result = "abc".substring(2, 0);`), "ab") // swapped args
	wantString(t, run(t, `var result = "hello".substr(1, 3);`), "ell")
	wantString(t, run(t, `var result = "hello".substr(-2);`), "lo")
	wantString(t, run(t, `var result = "x".padStart(3, "0");`), "00x")
	wantString(t, run(t, `var result = "x".padEnd(3, ".");`), "x..")
	wantString(t, run(t, `var result = "aaa".replace("a", "b");`), "baa") // first only
	wantString(t, run(t, `var result = "".split(",")[0];`), "")
	wantNumber(t, run(t, `var result = "abc".split("").length;`), 3)
}

func TestArrayEdgeCases(t *testing.T) {
	wantNumber(t, run(t, "var result = [].length;"), 0)
	wantBool(t, run(t, "var result = [].pop() === undefined;"), true)
	wantBool(t, run(t, "var result = [].shift() === undefined;"), true)
	wantString(t, run(t, "var result = [].join(',');"), "")
	wantNumber(t, run(t, "var result = [1, 2, 3].slice(5).length;"), 0)
	wantNumber(t, run(t, "var result = [1, 2, 3].slice(-2)[0];"), 2)
	wantNumber(t, run(t, "var a = [1, 2, 3, 4]; var r = a.splice(1, 2); var result = r.length * 10 + a.length;"), 22)
	wantNumber(t, run(t, "var a = [1, 2]; a.splice(1, 0, 9, 8); var result = a[1];"), 9)
	wantNumber(t, run(t, "var result = [2, 1].sort(function(a, b) { return b - a; })[0];"), 2)
	wantNumber(t, run(t, "var result = [10, 9, 8].findIndex(function(x) { return x < 10; });"), 1)
	wantBool(t, run(t, "var result = [].every(function() { return false; });"), true)
	wantBool(t, run(t, "var result = [].some(function() { return true; });"), false)
	wantNumber(t, run(t, "var a = new Array(3); var result = a.length;"), 3)
	wantNumber(t, run(t, "var result = Array.from([1, 2], function(x) { return x * 10; })[1];"), 20)
	wantNumber(t, run(t, "var result = Array.of(7, 8)[1];"), 8)
	// Array length assignment.
	wantNumber(t, run(t, "var a = [1, 2, 3]; a.length = 1; var result = a.length;"), 1)
	wantBool(t, run(t, "var a = [1]; a.length = 3; var result = a[2] === undefined;"), true)
	// reduce without initial value on empty array throws.
	err := runErr(t, "[].reduce(function(a, b) { return a + b; });")
	if !strings.Contains(err.Error(), "reduce") {
		t.Errorf("error = %v", err)
	}
}

func TestSliceCallOnArguments(t *testing.T) {
	// The Fig. 1d idiom: slice.call(arguments, 1).
	wantNumber(t, run(t, `
var slice = Array.prototype.slice;
function f() {
  var rest = slice.call(arguments, 1);
  return rest.length * 10 + rest[0];
}
var result = f("skip", 3, 4);`), 23)
}

func TestGetterSetterEdgeCases(t *testing.T) {
	// Getter inherited through the prototype chain.
	wantNumber(t, run(t, `
var base = {get magic() { return 7; }};
var child = Object.create(base);
var result = child.magic;`), 7)
	// Setter through the chain intercepts the write.
	wantNumber(t, run(t, `
var captured = 0;
var base = {set trap(v) { captured = v; }};
var child = Object.create(base);
child.trap = 9;
var result = captured;`), 9)
	// defineProperty with accessors.
	wantNumber(t, run(t, `
var o = {};
Object.defineProperty(o, "x", {get: function() { return 5; }});
var result = o.x;`), 5)
	// Accessor descriptor round-trip via merge (the express pattern with
	// getters).
	wantNumber(t, run(t, `
var src = {get g() { return 11; }};
var dst = {};
var d = Object.getOwnPropertyDescriptor(src, "g");
Object.defineProperty(dst, "g", d);
var result = dst.g;`), 11)
}

func TestThisEdgeCases(t *testing.T) {
	// Detached method call: this is undefined → lenient-free TypeError on
	// property access, but plain reads of globals still work.
	wantString(t, run(t, `
var o = {who: "obj", name: function() { return typeof this; }};
var f = o.name;
var result = f();`), "undefined")
	// Constructor without new returning primitives: this is undefined.
	wantBool(t, run(t, `
function NotCtor() { return typeof this === "undefined"; }
var result = NotCtor();`), true)
	// Nested arrows capture through two levels.
	wantNumber(t, run(t, `
var o = {
  n: 3,
  m: function() {
    var outer = () => {
      var inner = () => this.n;
      return inner();
    };
    return outer();
  }
};
var result = o.m();`), 3)
}

func TestExceptionEdgeCases(t *testing.T) {
	// Throwing non-Error values.
	wantString(t, run(t, `
var result = "";
try { throw "plain string"; } catch (e) { result = e; }`), "plain string")
	wantNumber(t, run(t, `
var result = 0;
try { throw 42; } catch (e) { result = e; }`), 42)
	// Rethrow from catch.
	wantString(t, run(t, `
var result = "";
try {
  try { throw new Error("inner"); } catch (e) { throw new Error("re:" + e.message); }
} catch (e2) { result = e2.message; }`), "re:inner")
	// finally runs on the throwing path.
	wantString(t, run(t, `
var log = "";
function f() {
  try { throw new Error("x"); } finally { log += "F"; }
}
try { f(); } catch (e) { log += "C"; }
var result = log;`), "FC")
	// return inside try still runs finally.
	wantString(t, run(t, `
var log = "";
function f() {
  try { return "ret"; } finally { log += "fin"; }
}
var r = f();
var result = log + ":" + r;`), "fin:ret")
	// finally's control flow overrides try's.
	wantString(t, run(t, `
function f() {
  try { return "fromTry"; } finally { return "fromFinally"; }
}
var result = f();`), "fromFinally")
}

func TestLoopEdgeCases(t *testing.T) {
	wantNumber(t, run(t, "var n = 0; for (;;) { n++; if (n > 4) break; } var result = n;"), 5)
	wantNumber(t, run(t, `
var sum = 0;
for (var i = 0; i < 3; i++) {
  sum += i;
}
var result = sum;`), 3)
	// for-in over an array yields index strings.
	wantString(t, run(t, `
var s = "";
for (var k in ["a", "b"]) { s += typeof k + ":" + k + ";"; }
var result = s;`), "string:0;string:1;")
	// continue in while.
	wantNumber(t, run(t, `
var n = 0, total = 0;
while (n < 5) {
  n++;
  if (n % 2 === 0) continue;
  total += n;
}
var result = total;`), 9)
}

func TestNumericEdgeCases(t *testing.T) {
	wantBool(t, run(t, "var result = 0.1 + 0.2 !== 0.3;"), true) // IEEE
	wantBool(t, run(t, "var result = 1 / 0 === Infinity;"), true)
	wantBool(t, run(t, "var result = -1 / 0 === -Infinity;"), true)
	wantBool(t, run(t, "var result = isNaN(0 / 0);"), true)
	wantString(t, run(t, "var result = typeof NaN;"), "number")
	wantBool(t, run(t, `var result = "5" * "4" === 20;`), true)
	wantString(t, run(t, `var result = "5" + 4;`), "54")
	wantNumber(t, run(t, `var result = "5" - 4;`), 1)
	wantBool(t, run(t, "var result = 0 === -0;"), true)
}

func TestHoistingEdgeCases(t *testing.T) {
	// Function declarations hoist out of blocks (annex-B style).
	wantNumber(t, run(t, `
var result = fromBlock();
if (true) {
  function fromBlock() { return 3; }
}`), 3)
	// var in a loop body hoists to function scope.
	wantNumber(t, run(t, `
function f() {
  for (var i = 0; i < 3; i++) { var last = i; }
  return last;
}
var result = f();`), 2)
	// `var x;` without initializer does not clobber a hoisted function of
	// the same name; with an initializer the assignment wins.
	wantString(t, run(t, `
var dual;
function dual() {}
var result = typeof dual;`), "function")
	wantString(t, run(t, `
var dual2 = 1;
function dual2() {}
var result = typeof dual2;`), "number")
}

func TestClosureEdgeCases(t *testing.T) {
	// Shared mutable closure state between two closures.
	wantNumber(t, run(t, `
function makePair() {
  var n = 0;
  return {
    inc: function() { n++; return n; },
    get: function() { return n; }
  };
}
var p = makePair();
p.inc(); p.inc();
var result = p.get();`), 2)
	// Classic var-in-loop capture (all closures share one binding).
	wantNumber(t, run(t, `
var fns = [];
for (var i = 0; i < 3; i++) {
  fns.push(function() { return i; });
}
var result = fns[0]();`), 3)
}

func TestEvalEdgeCases(t *testing.T) {
	// eval of a non-string returns it unchanged.
	wantNumber(t, run(t, "var result = eval(42);"), 42)
	// Syntax errors in eval are catchable SyntaxErrors.
	wantString(t, run(t, `
var result = "";
try { eval("var ="); } catch (e) { result = e.name; }`), "SyntaxError")
	// Direct eval reads the caller's scope.
	wantNumber(t, run(t, `
function f() {
  var localVal = 9;
  return eval("localVal + 1");
}
var result = f();`), 10)
}

func TestProxyDeepBehaviors(t *testing.T) {
	it := New(Options{Proxy: true, Lenient: true, MaxLoopIters: 1000})
	p := it.Proxy()
	prog, err := parser.Parse("test.js", `
// Arithmetic with p*: NaN-ish, but never crashes.
var sum = mystery + 1;
var cmp = mystery < 5;
var str = "v=" + mystery;
var t = typeof mystery;
// instanceof/in with proxy operands.
var isInst = ({}) instanceof Object && !(mystery instanceof Object);
var hasIn = "x" in mystery;
// for-of over p*: no iterations.
var ofRan = false;
for (var v of mystery) { ofRan = true; }
// delete on p* is a no-op that succeeds.
var del = delete mystery.prop;
// Constructing p*.
var inst = new mystery(1, 2);
`)
	if err != nil {
		t.Fatal(err)
	}
	scope := value.NewScope(it.GlobalScope())
	scope.Declare("mystery", p)
	if _, err := it.RunProgram(prog, scope, value.Undefined{}); err != nil {
		t.Fatalf("proxy semantics crashed: %v", err)
	}
	get := func(name string) value.Value { v, _ := scope.Get(name); return v }
	wantString(t, get("t"), "object")
	wantBool(t, get("cmp"), false)
	wantBool(t, get("hasIn"), false)
	wantBool(t, get("ofRan"), false)
	wantBool(t, get("del"), true)
	if get("inst") != value.Value(p) {
		t.Error("new p*() should yield p*")
	}
}

func TestForceCallBindsEverything(t *testing.T) {
	it := New(Options{Proxy: true, Lenient: true, MaxLoopIters: 1000})
	prog, err := parser.Parse("test.js", `
var observed = null;
function target(a, b) {
  observed = {
    aIsProxy: a, bIsProxy: b,
    argsIsProxy: arguments,
    thisType: typeof this
  };
}
`)
	if err != nil {
		t.Fatal(err)
	}
	scope := value.NewScope(it.GlobalScope())
	if _, err := it.RunProgram(prog, scope, value.Undefined{}); err != nil {
		t.Fatal(err)
	}
	fnV, _ := scope.Get("target")
	fn := fnV.(*value.Object)
	if _, err := it.ForceCall(fn, nil); err != nil {
		t.Fatal(err)
	}
	obsV, _ := scope.Get("observed")
	obs := obsV.(*value.Object)
	p := it.Proxy()
	for _, key := range []string{"aIsProxy", "bIsProxy", "argsIsProxy"} {
		got := obs.GetOwn(key)
		if got == nil || got.Value != value.Value(p) {
			t.Errorf("%s: forced binding is not p*", key)
		}
	}
}

func TestRegexEdgeCases(t *testing.T) {
	wantBool(t, run(t, `var result = /^$/.test("");`), true)
	wantString(t, run(t, `var m = /(\d+)-(\d+)/.exec("a 12-34 b"); var result = m[1] + "/" + m[2];`), "12/34")
	wantBool(t, run(t, `var result = /abc/.exec("xyz") === null;`), true)
	wantBool(t, run(t, `var result = new RegExp(/src/).test("a src b");`), true)
	wantString(t, run(t, `var result = ("" + /a\/b/g);`), "/a\\/b/g")
}

func TestJSONEdgeCases(t *testing.T) {
	wantString(t, run(t, `var result = JSON.stringify([undefined, function() {}]);`), "[null,null]")
	wantBool(t, run(t, `var result = JSON.stringify(undefined) === undefined;`), true)
	wantString(t, run(t, `var o = {f: function() {}, x: 1}; var result = JSON.stringify(o);`), `{"x":1}`)
	// Cycles degrade to null rather than hanging.
	wantString(t, run(t, `
var o = {a: 1};
o.self = o;
var result = JSON.stringify(o);`), `{"a":1,"self":null}`)
	wantString(t, run(t, `var result = "";
try { JSON.parse("{bad"); } catch (e) { result = e.name; }`), "SyntaxError")
	wantNumber(t, run(t, `var result = JSON.parse("[1,2,3]").length;`), 3)
}

func TestSwitchFallthroughAndDefaultPosition(t *testing.T) {
	// default in the middle: matched only after all cases fail, and
	// execution falls through from it.
	wantString(t, run(t, `
function f(x) {
  var r = "";
  switch (x) {
    case 1: r += "one"; break;
    default: r += "def";
    case 2: r += "two"; break;
  }
  return r;
}
var result = f(99) + "|" + f(2) + "|" + f(1);`), "deftwo|two|one")
}

func TestLogicalShortCircuitEffects(t *testing.T) {
	wantNumber(t, run(t, `
var calls = 0;
function bump() { calls++; return true; }
var a = false && bump();
var b = true || bump();
var result = calls;`), 0)
}

func TestDeepRecursionWithinBudget(t *testing.T) {
	wantNumber(t, run(t, `
function down(n) { return n === 0 ? 0 : down(n - 1); }
var result = down(500);`), 0)
}

func TestUtilFormatViaGlobalScope(t *testing.T) {
	// Number formatting round-trip through string ops.
	wantString(t, run(t, `var result = (1234.5).toString() + "|" + (0.5).toString();`), "1234.5|0.5")
}

func TestHookLocSuppression(t *testing.T) {
	if !isEvalLoc(loc.Loc{File: "/app/x.js#eval1", Line: 1, Col: 1}) {
		t.Error("eval loc not detected")
	}
	if isEvalLoc(loc.Loc{File: "/app/x.js", Line: 1, Col: 1}) {
		t.Error("ordinary loc misdetected")
	}
}

func TestBoundFunctions(t *testing.T) {
	wantNumber(t, run(t, `
function add(a, b, c) { return a + b + c; }
var add12 = add.bind(null, 1, 2);
var result = add12(30);`), 33)
	wantString(t, run(t, `
var o = {tag: "T", get: function() { return this.tag; }};
var bound = o.get.bind(o);
var other = {tag: "other"};
other.steal = bound;
var result = other.steal();`), "T")
}

func TestGlobalAssignmentCreatesBinding(t *testing.T) {
	wantNumber(t, run(t, `
function f() { implicitGlobal = 8; }
f();
var result = implicitGlobal;`), 8)
}
