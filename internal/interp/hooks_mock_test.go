package interp

import (
	"testing"

	"repro/internal/loc"
	"repro/internal/parser"
	"repro/internal/value"
)

// TestNopHooks exercises the no-op observation sink directly.
func TestNopHooks(t *testing.T) {
	var h Hooks = NopHooks{}
	obj := value.NewObject(nil)
	l := loc.Loc{File: "x.js", Line: 1, Col: 1}
	h.ObjectCreated(obj, l)
	h.FunctionDefined(obj, l)
	h.BeforeCall(l, obj, value.Undefined{}, nil)
	h.DynamicRead(l, obj, "k", value.Undefined{})
	h.DynamicWrite(l, obj, "k", value.Undefined{})
	h.StaticWrite(obj, "k", value.Undefined{})
	h.EvalCode("m.js", "1;")
	h.RequireResolved(l, "m", false)
}

// TestAccessors exercises the small interpreter accessors.
func TestAccessors(t *testing.T) {
	it := New(Options{})
	if it.Global() == nil {
		t.Error("Global nil")
	}
	if it.ObjectProto() == nil || it.FunctionProto() == nil {
		t.Error("prototypes nil")
	}
	if it.CurrentModule() != "" {
		t.Errorf("initial module = %q", it.CurrentModule())
	}
	it.ResetBudget() // must not panic
}

// TestMockModuleSemantics drives the sandbox mock directly: every property
// read yields the mock function, which invokes callable arguments with
// proxy arguments and returns p*.
func TestMockModuleSemantics(t *testing.T) {
	it := New(Options{Proxy: true, Lenient: true})
	mock := it.NewMockModule()
	prog, err := parser.Parse("t.js", `
var sawArgs = null;
mockMod.anything.at.all;
var fn = mockMod.readFile;
var ret = fn("path", function cb(a, b) { sawArgs = [a, b]; });
var constructed = new mockMod.Thing();
`)
	if err != nil {
		t.Fatal(err)
	}
	scope := value.NewScope(it.GlobalScope())
	scope.Declare("mockMod", mock)
	if _, err := it.RunProgram(prog, scope, value.Undefined{}); err != nil {
		t.Fatalf("mock semantics crashed: %v", err)
	}
	p := it.Proxy()
	ret, _ := scope.Get("ret")
	if ret != value.Value(p) {
		t.Error("mock call should return p*")
	}
	sawV, _ := scope.Get("sawArgs")
	saw, ok := sawV.(*value.Object)
	if !ok || saw.Class != value.ClassArray {
		t.Fatal("callback not invoked by mock")
	}
	for i := range saw.Elems {
		if saw.Elems[i] != value.Value(p) {
			t.Errorf("callback arg %d is not p*", i)
		}
	}
	// Constructing through a mock member yields an object (the fresh
	// instance; the mock constructor contributes nothing).
	cons, _ := scope.Get("constructed")
	if _, ok := cons.(*value.Object); !ok {
		t.Errorf("new mock.Thing() should yield an object, got %T", cons)
	}
}

// TestSpreadOfString exercises string spreading.
func TestSpreadOfString(t *testing.T) {
	wantNumber(t, run(t, `var a = [..."abc"]; var result = a.length;`), 3)
	wantString(t, run(t, `var a = [..."xy"]; var result = a[1];`), "y")
	// Spreading a non-iterable contributes nothing.
	wantNumber(t, run(t, `function f() { return arguments.length; } var result = f(...5);`), 0)
}
