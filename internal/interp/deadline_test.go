package interp

import (
	"errors"
	"testing"
	"time"

	"repro/internal/parser"
	"repro/internal/value"
)

// runWithOptions executes src under opts and returns the error.
func runWithOptions(t *testing.T, src string, opts Options) error {
	t.Helper()
	it := New(opts)
	prog, err := parser.Parse("test.js", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	_, err = it.RunProgram(prog, value.NewScope(it.GlobalScope()), value.Undefined{})
	return err
}

// spinPrograms are hang shapes a deadline must contain: a bare spin (no
// expression ever evaluated — only chargeLoop runs), a spin with body work
// (the evalExpr path), and a spin inside a function call.
var spinPrograms = []struct {
	name, src string
}{
	{"bare", "for (;;) { }"},
	{"body-work", "var i = 0; for (;;) { i = i + 1; }"},
	{"in-call", "function f() { while (true) { } } f();"},
}

// TestDeadlineContainsSpin: a spin-loop program must return a deadline
// BudgetError within 2× the configured wall-clock limit, in both strict and
// lenient modes. The loop budget is left unlimited so only the deadline can
// stop the spin (as with real hangs the structural budgets cannot see).
func TestDeadlineContainsSpin(t *testing.T) {
	const limit = 100 * time.Millisecond
	modes := []struct {
		name string
		opts Options
	}{
		{"strict", Options{Deadline: limit}},
		{"lenient", Options{Deadline: limit, Proxy: true, Lenient: true}},
	}
	for _, mode := range modes {
		for _, prog := range spinPrograms {
			t.Run(mode.name+"/"+prog.name, func(t *testing.T) {
				start := time.Now()
				err := runWithOptions(t, prog.src, mode.opts)
				elapsed := time.Since(start)
				var budget *BudgetError
				if !errors.As(err, &budget) {
					t.Fatalf("got error %v (%T), want *BudgetError", err, err)
				}
				if !budget.IsDeadline() {
					t.Fatalf("budget reason = %q, want %q", budget.Reason, ReasonDeadline)
				}
				if elapsed > 2*limit {
					t.Errorf("spin contained after %v, want within 2× the %v deadline", elapsed, limit)
				}
			})
		}
	}
}

// TestDeadlineNotCatchable: the deadline abort is a Go-level error, not a
// JavaScript exception, so try/catch cannot swallow it — a hang inside a
// try block is still contained.
func TestDeadlineNotCatchable(t *testing.T) {
	err := runWithOptions(t, "try { for (;;) { } } catch (e) { }", Options{Deadline: 50 * time.Millisecond})
	var budget *BudgetError
	if !errors.As(err, &budget) || !budget.IsDeadline() {
		t.Fatalf("got %v, want uncatchable deadline BudgetError", err)
	}
}

// TestResetBudgetRestartsDeadline: ResetBudget must restart the deadline
// clock, so a sequence of items each within the limit never trips it even
// though their total runtime exceeds it.
func TestResetBudgetRestartsDeadline(t *testing.T) {
	const limit = 120 * time.Millisecond
	it := New(Options{Deadline: limit})
	prog, err := parser.Parse("test.js", "var x = 1; x = x + 1;")
	if err != nil {
		t.Fatal(err)
	}
	// Sleep most of the limit away between items; without the reset the
	// clock would expire partway through the sequence.
	for i := 0; i < 4; i++ {
		time.Sleep(limit / 2)
		it.ResetBudget()
		if _, err := it.RunProgram(prog, value.NewScope(it.GlobalScope()), value.Undefined{}); err != nil {
			t.Fatalf("item %d: %v (ResetBudget must restart the deadline clock)", i, err)
		}
	}

	// And the restarted clock still enforces the limit for the next item.
	spin, err := parser.Parse("test.js", "for (;;) { }")
	if err != nil {
		t.Fatal(err)
	}
	it.ResetBudget()
	_, err = it.RunProgram(spin, value.NewScope(it.GlobalScope()), value.Undefined{})
	var budget *BudgetError
	if !errors.As(err, &budget) || !budget.IsDeadline() {
		t.Fatalf("got %v, want deadline BudgetError after reset", err)
	}
}

// TestStepBudget: MaxSteps bounds total expression evaluations per item,
// aborting hard in both strict and lenient modes (unlike the loop budget,
// which lenient mode converts into a loop exit), and ResetBudget clears the
// counter.
func TestStepBudget(t *testing.T) {
	for _, mode := range []struct {
		name string
		opts Options
	}{
		{"strict", Options{MaxSteps: 1000}},
		{"lenient", Options{MaxSteps: 1000, Proxy: true, Lenient: true}},
	} {
		t.Run(mode.name, func(t *testing.T) {
			err := runWithOptions(t, "var i = 0; while (true) { i = i + 1; }", mode.opts)
			var budget *BudgetError
			if !errors.As(err, &budget) {
				t.Fatalf("got %v (%T), want *BudgetError", err, err)
			}
			if budget.Reason != ReasonSteps {
				t.Fatalf("budget reason = %q, want %q", budget.Reason, ReasonSteps)
			}
		})
	}

	// ResetBudget clears the step counter: many small items under one
	// interpreter never trip a budget each item fits in.
	it := New(Options{MaxSteps: 1000})
	prog, err := parser.Parse("test.js", "var x = 0; for (var i = 0; i < 50; i = i + 1) { x = x + i; }")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		it.ResetBudget()
		if _, err := it.RunProgram(prog, value.NewScope(it.GlobalScope()), value.Undefined{}); err != nil {
			t.Fatalf("item %d: %v (ResetBudget must clear the step counter)", i, err)
		}
	}
}

// TestNoBudgetsNoInterference: with neither Deadline nor MaxSteps set,
// programs run exactly as before (the hot path takes the budgetActive
// fast path and no BudgetError can carry the new reasons).
func TestNoBudgetsNoInterference(t *testing.T) {
	if err := runWithOptions(t, "var x = 0; for (var i = 0; i < 10000; i = i + 1) { x = x + 1; }", Options{}); err != nil {
		t.Fatalf("unbudgeted run failed: %v", err)
	}
}
