package interp

import "testing"

func TestMapSemantics(t *testing.T) {
	wantNumber(t, run(t, `
var m = new Map();
m.set("a", 1).set("b", 2).set("a", 3);
var result = m.get("a") * 10 + m.size;`), 32)
	wantBool(t, run(t, `var m = new Map(); m.set(1, "x"); var result = m.has(1) && !m.has(2);`), true)
	wantBool(t, run(t, `
var m = new Map();
m.set("k", 1);
var d1 = m.delete("k");
var d2 = m.delete("k");
var result = d1 && !d2 && m.size === 0;`), true)
	// Object keys use identity.
	wantBool(t, run(t, `
var k1 = {}; var k2 = {};
var m = new Map();
m.set(k1, "one");
var result = m.get(k1) === "one" && m.get(k2) === undefined;`), true)
	// Seeding from pairs.
	wantNumber(t, run(t, `var m = new Map([["x", 7], ["y", 8]]); var result = m.get("y");`), 8)
	// Iteration.
	wantString(t, run(t, `
var m = new Map([["a", 1], ["b", 2]]);
var s = "";
m.forEach(function(v, k) { s += k + v; });
var result = s + "|" + m.keys().join(",") + "|" + m.values().join(",");`), "a1b2|a,b|1,2")
}

func TestSetSemantics(t *testing.T) {
	wantNumber(t, run(t, `
var s = new Set();
s.add(1).add(2).add(1);
var result = s.size;`), 2)
	wantBool(t, run(t, `var s = new Set([3, 3, 4]); var result = s.has(3) && s.size === 2;`), true)
	wantString(t, run(t, `
var s = new Set(["x", "y"]);
var out = [];
s.forEach(function(v) { out.push(v); });
var result = out.join("");`), "xy")
	wantBool(t, run(t, `
var s = new Set([1]);
s.clear();
var result = s.size === 0;`), true)
}

func TestDateDeterministic(t *testing.T) {
	wantBool(t, run(t, `
var t1 = Date.now();
var t2 = Date.now();
var result = t2 > t1;`), true)
	wantBool(t, run(t, `
var d = new Date();
var result = typeof d.getTime() === "number" && d.getTime() > 0;`), true)
	wantNumber(t, run(t, `var d = new Date(12345); var result = d.getTime();`), 12345)
	// Two interpreters agree (determinism).
	v1 := run(t, "var result = Date.now();")
	v2 := run(t, "var result = Date.now();")
	if v1 != v2 {
		t.Errorf("Date.now not deterministic across interpreters: %v vs %v", v1, v2)
	}
}

func TestPromiseSynchronous(t *testing.T) {
	wantNumber(t, run(t, `
var result = 0;
new Promise(function(resolve) { resolve(21); })
  .then(function(v) { return v * 2; })
  .then(function(v) { result = v; });`), 42)
	wantString(t, run(t, `
var result = "";
Promise.reject(new Error("nope"))
  .catch(function(e) { result = "caught:" + e.message; });`), "caught:nope")
	// Executor throw rejects.
	wantString(t, run(t, `
var result = "";
new Promise(function() { throw new Error("boom"); })
  .catch(function(e) { result = e.message; });`), "boom")
	// then on rejected skips the fulfilled handler.
	wantString(t, run(t, `
var result = "start";
Promise.reject("r")
  .then(function() { result = "wrong"; })
  .catch(function(v) { result = "right:" + v; });`), "right:r")
	// Chaining a promise from then.
	wantNumber(t, run(t, `
var result = 0;
Promise.resolve(1)
  .then(function(v) { return Promise.resolve(v + 10); })
  .then(function(v) { result = v; });`), 11)
	// Promise.all collects in order.
	wantString(t, run(t, `
var result = "";
Promise.all([Promise.resolve("a"), Promise.resolve("b"), "c"])
  .then(function(vs) { result = vs.join(""); });`), "abc")
	// finally runs either way.
	wantNumber(t, run(t, `
var result = 0;
Promise.resolve(1).finally(function() { result += 1; });
Promise.reject(2).finally(function() { result += 10; }).catch(function() {});
`), 11)
}

func TestPromiseHandlerThrowRejects(t *testing.T) {
	wantString(t, run(t, `
var result = "";
Promise.resolve(1)
  .then(function() { throw new Error("mid"); })
  .catch(function(e) { result = e.message; });`), "mid")
}

func TestWeakMapAlias(t *testing.T) {
	wantBool(t, run(t, `
var wm = new WeakMap();
var k = {};
wm.set(k, 1);
var result = wm.get(k) === 1;`), true)
}
