// AST serialization for the persistent store. The AST is a pure tree of
// exported fields, so encoding/gob round-trips it exactly; every concrete
// node type that can sit behind an ast.Stmt/ast.Expr interface field is
// registered here so decoded trees come back with the right dynamic types.
package cache

import (
	"bytes"
	"encoding/gob"

	"repro/internal/ast"
)

func init() {
	for _, n := range []any{
		// Statements.
		&ast.VarDecl{}, &ast.FuncDecl{}, &ast.ExprStmt{}, &ast.BlockStmt{},
		&ast.IfStmt{}, &ast.WhileStmt{}, &ast.DoWhileStmt{}, &ast.ForStmt{},
		&ast.ForInStmt{}, &ast.ReturnStmt{}, &ast.BreakStmt{}, &ast.ContinueStmt{},
		&ast.ThrowStmt{}, &ast.TryStmt{}, &ast.SwitchStmt{}, &ast.EmptyStmt{},
		// Expressions.
		&ast.Ident{}, &ast.NumberLit{}, &ast.StringLit{}, &ast.BoolLit{},
		&ast.NullLit{}, &ast.UndefinedLit{}, &ast.RegexLit{}, &ast.TemplateLit{},
		&ast.ArrayLit{}, &ast.ObjectLit{}, &ast.FuncLit{}, &ast.CallExpr{},
		&ast.NewExpr{}, &ast.MemberExpr{}, &ast.AssignExpr{}, &ast.BinaryExpr{},
		&ast.LogicalExpr{}, &ast.UnaryExpr{}, &ast.UpdateExpr{}, &ast.CondExpr{},
		&ast.SeqExpr{}, &ast.ThisExpr{}, &ast.SpreadExpr{},
	} {
		gob.Register(n)
	}
}

// EncodeAST serializes a parsed program.
func EncodeAST(prog *ast.Program) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(prog); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DecodeAST deserializes a program written by EncodeAST.
func DecodeAST(data []byte) (*ast.Program, error) {
	var prog ast.Program
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&prog); err != nil {
		return nil, err
	}
	return &prog, nil
}

// LoadAST implements modules.ParseStore: it returns the cached parse of a
// source key, or ok=false on any miss (absent, corrupt, undecodable).
func (s *Store) LoadAST(key string) (*ast.Program, bool) {
	payload, ok := s.Get(KindAST, key)
	if !ok {
		return nil, false
	}
	prog, err := DecodeAST(payload)
	if err != nil {
		return nil, false
	}
	return prog, true
}

// StoreAST implements modules.ParseStore. Encoding or write failures are
// dropped: the cache is an accelerator, never a correctness dependency.
func (s *Store) StoreAST(key string, prog *ast.Program) {
	payload, err := EncodeAST(prog)
	if err != nil {
		return
	}
	_ = s.Put(KindAST, key, payload)
}
