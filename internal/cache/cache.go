// Package cache is the content-addressed persistent artifact store behind
// warm re-analysis: parsed ASTs, approximate-interpretation hint sets, and
// solved analysis outcomes are written to disk keyed by the SHA-256 of the
// exact content they were computed from (file bytes for parses, the whole
// project's file set plus the analysis-options fingerprint for hints and
// outcomes). Because every key covers the complete input of its artifact,
// a cache hit is bit-for-bit equivalent to recomputing — delta re-analysis
// built on this store produces byte-identical reports by construction.
//
// Entries are single files with a versioned binary frame (magic, format
// version, kind, payload checksum); loads validate the whole frame and
// treat any mismatch — truncation, corruption, a stale format version, a
// kind collision — as a miss, never an error or a panic. Writes go through
// a temp file in the same directory followed by an atomic rename, so
// concurrent processes sharing one cache directory see either the complete
// entry or none, and racing writers of the same key are harmless (their
// payloads are identical by the content-addressing argument).
package cache

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/modules"
	"repro/internal/perf"
)

// FormatVersion is the on-disk frame version. Bumping it invalidates every
// existing entry (old frames load as misses), which is the upgrade story
// for any change to an artifact's encoding.
const FormatVersion = 1

// magic marks files written by this store.
var magic = [4]byte{'r', 'a', 'c', 'f'}

// Artifact kinds. The kind is part of the frame (a key accidentally shared
// across kinds cannot alias) and of the on-disk layout (one subdirectory
// per kind).
const (
	KindAST     = "ast"
	KindHints   = "hints"
	KindOutcome = "outcome"
)

// Store is one cache directory. All methods are safe for concurrent use,
// including by multiple processes sharing the directory.
type Store struct {
	dir string

	hits, misses, bytesWritten atomic.Int64
}

// tmpMaxAge is how old a leftover temp file must be before Open sweeps it:
// younger ones may belong to a concurrent writer mid-Put.
const tmpMaxAge = time.Hour

// Open creates (if needed) and opens a cache directory. It also sweeps
// stale temp files left behind by writers killed between CreateTemp and
// Rename — nothing else would ever delete them from a long-lived shared
// cache directory.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	sweepTempFiles(dir, time.Now().Add(-tmpMaxAge))
	return &Store{dir: dir}, nil
}

// sweepTempFiles removes Put's ".<key>.tmp*" files older than cutoff.
// Cheap: entries are sharded into small per-prefix directories. All errors
// are ignored — sweeping is best-effort hygiene, never a reason to fail.
func sweepTempFiles(dir string, cutoff time.Time) {
	_ = filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return nil
		}
		name := d.Name()
		if !strings.HasPrefix(name, ".") || !strings.Contains(name, ".tmp") {
			return nil
		}
		if info, ierr := d.Info(); ierr == nil && info.ModTime().Before(cutoff) {
			_ = os.Remove(path)
		}
		return nil
	})
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Stats reports loads served, loads missed, and bytes written by this
// Store value (process-wide totals live in the perf counters).
func (s *Store) Stats() (hits, misses, bytesWritten int64) {
	return s.hits.Load(), s.misses.Load(), s.bytesWritten.Load()
}

// entryPath shards entries by key prefix so directories stay small.
func (s *Store) entryPath(kind, key string) string {
	return filepath.Join(s.dir, kind, key[:2], key)
}

// validKey keeps path construction safe: keys are the lowercase-hex
// fingerprints produced in this package.
func validKey(key string) bool {
	if len(key) < 8 {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if !('0' <= c && c <= '9' || 'a' <= c && c <= 'f') {
			return false
		}
	}
	return true
}

// Get loads the payload stored under (kind, key). Absent, truncated,
// corrupt, and stale-version entries all return ok=false; Get never
// returns an error and never panics on bad bytes.
func (s *Store) Get(kind, key string) (payload []byte, ok bool) {
	if s == nil {
		return nil, false
	}
	if validKey(key) {
		if data, err := os.ReadFile(s.entryPath(kind, key)); err == nil {
			if p, ok := decodeFrame(data, kind); ok {
				s.hits.Add(1)
				perf.Global().AddCacheHit()
				return p, true
			}
		}
	}
	s.misses.Add(1)
	perf.Global().AddCacheMiss()
	return nil, false
}

// Put stores payload under (kind, key) atomically: the frame is written to
// a temp file in the entry's directory and renamed into place. Concurrent
// writers of the same key are safe (last rename wins; the content-address
// argument makes their payloads identical anyway).
func (s *Store) Put(kind, key string, payload []byte) error {
	if s == nil || !validKey(key) {
		return nil
	}
	dst := s.entryPath(kind, key)
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		return err
	}
	frame := encodeFrame(kind, payload)
	tmp, err := os.CreateTemp(filepath.Dir(dst), "."+key+".tmp*")
	if err != nil {
		return err
	}
	_, werr := tmp.Write(frame)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		if werr != nil {
			return werr
		}
		return cerr
	}
	if err := os.Rename(tmp.Name(), dst); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	n := int64(len(frame))
	s.bytesWritten.Add(n)
	perf.Global().AddCacheBytes(n)
	return nil
}

// Frame layout (big-endian):
//
//	magic   [4]byte  "racf"
//	version uint32   FormatVersion
//	kindLen uint16   + kind bytes
//	paySum  [32]byte SHA-256 of payload
//	payLen  uint64   + payload bytes
func encodeFrame(kind string, payload []byte) []byte {
	out := make([]byte, 0, 4+4+2+len(kind)+32+8+len(payload))
	out = append(out, magic[:]...)
	out = binary.BigEndian.AppendUint32(out, FormatVersion)
	out = binary.BigEndian.AppendUint16(out, uint16(len(kind)))
	out = append(out, kind...)
	sum := sha256.Sum256(payload)
	out = append(out, sum[:]...)
	out = binary.BigEndian.AppendUint64(out, uint64(len(payload)))
	out = append(out, payload...)
	return out
}

// decodeFrame validates every field of the frame; any mismatch is a miss.
func decodeFrame(data []byte, wantKind string) ([]byte, bool) {
	if len(data) < 4+4+2 {
		return nil, false
	}
	if [4]byte(data[:4]) != magic {
		return nil, false
	}
	if binary.BigEndian.Uint32(data[4:8]) != FormatVersion {
		return nil, false
	}
	kindLen := int(binary.BigEndian.Uint16(data[8:10]))
	rest := data[10:]
	if len(rest) < kindLen+32+8 {
		return nil, false
	}
	if string(rest[:kindLen]) != wantKind {
		return nil, false
	}
	rest = rest[kindLen:]
	var wantSum [32]byte
	copy(wantSum[:], rest[:32])
	payLen := binary.BigEndian.Uint64(rest[32:40])
	rest = rest[40:]
	if uint64(len(rest)) != payLen {
		return nil, false
	}
	if sha256.Sum256(rest) != wantSum {
		return nil, false
	}
	return rest, true
}

// ------------------------------------------------------------ fingerprints

// HashBytes returns the lowercase-hex SHA-256 of b.
func HashBytes(b []byte) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// Fingerprint hashes a sequence of parts with length framing, so part
// boundaries cannot alias ("ab","c" != "a","bc").
func Fingerprint(parts ...string) string {
	h := sha256.New()
	var lenBuf [8]byte
	for _, p := range parts {
		binary.BigEndian.PutUint64(lenBuf[:], uint64(len(p)))
		h.Write(lenBuf[:])
		h.Write([]byte(p))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// ProjectFingerprint hashes everything the analysis pipeline reads from a
// project: its name (reports embed it), entry configuration, and the full
// file set as sorted (path, content) pairs. Each list is prefixed by its
// element count, so list boundaries cannot alias (MainEntries=["x"] with
// empty TestEntries hashes differently from the reverse). Two projects
// with equal fingerprints are indistinguishable to every pipeline phase,
// which is the soundness basis for whole-outcome reuse.
func ProjectFingerprint(p *modules.Project) string {
	h := sha256.New()
	var lenBuf [8]byte
	wr := func(s string) {
		binary.BigEndian.PutUint64(lenBuf[:], uint64(len(s)))
		h.Write(lenBuf[:])
		h.Write([]byte(s))
	}
	wrN := func(n int) {
		binary.BigEndian.PutUint64(lenBuf[:], uint64(n))
		h.Write(lenBuf[:])
	}
	wr(p.Name)
	wr(p.MainPrefix)
	wrN(len(p.MainEntries))
	for _, e := range p.MainEntries {
		wr(e)
	}
	wrN(len(p.TestEntries))
	for _, e := range p.TestEntries {
		wr(e)
	}
	paths := make([]string, 0, len(p.Files))
	for path := range p.Files {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	wrN(len(paths))
	for _, path := range paths {
		wr(path)
		wr(p.Files[path])
	}
	return hex.EncodeToString(h.Sum(nil))
}
