package cache

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/ast"
	"repro/internal/modules"
	"repro/internal/parser"
)

func open(t *testing.T) *Store {
	t.Helper()
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPutGetRoundTrip(t *testing.T) {
	s := open(t)
	payload := []byte("hello artifact")
	key := HashBytes(payload)
	if _, ok := s.Get(KindAST, key); ok {
		t.Fatal("empty store reported a hit")
	}
	if err := s.Put(KindAST, key, payload); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(KindAST, key)
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("Get = %q, %t; want payload back", got, ok)
	}
	hits, misses, written := s.Stats()
	if hits != 1 || misses != 1 || written == 0 {
		t.Errorf("Stats = %d hits, %d misses, %d bytes; want 1, 1, >0", hits, misses, written)
	}

	// A second Store over the same directory sees the entry (the
	// cross-process persistence contract).
	s2, err := Open(s.Dir())
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := s2.Get(KindAST, key); !ok || !bytes.Equal(got, payload) {
		t.Error("fresh store over the same dir missed a persisted entry")
	}
}

func TestNilStoreIsMiss(t *testing.T) {
	var s *Store
	if _, ok := s.Get(KindAST, HashBytes(nil)); ok {
		t.Error("nil store reported a hit")
	}
	if err := s.Put(KindAST, HashBytes(nil), []byte("x")); err != nil {
		t.Errorf("nil store Put errored: %v", err)
	}
}

func TestInvalidKeysRejected(t *testing.T) {
	s := open(t)
	for _, key := range []string{"", "short", "../../../../etc/passwd", "ABCDEF0123456789", "0123456/23456789"} {
		if err := s.Put(KindAST, key, []byte("x")); err != nil {
			t.Errorf("Put(%q) errored: %v", key, err)
		}
		if _, ok := s.Get(KindAST, key); ok {
			t.Errorf("Get(%q) hit", key)
		}
	}
	// Nothing may have been written anywhere under the root.
	var files int
	filepath.Walk(s.Dir(), func(path string, info os.FileInfo, err error) error {
		if err == nil && !info.IsDir() {
			files++
		}
		return nil
	})
	if files != 0 {
		t.Errorf("invalid keys left %d files in the cache dir", files)
	}
}

// mutateEntry rewrites the single on-disk entry through fn.
func mutateEntry(t *testing.T, s *Store, kind, key string, fn func([]byte) []byte) {
	t.Helper()
	path := s.entryPath(kind, key)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, fn(data), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestCorruptedEntryIsMiss(t *testing.T) {
	payload := []byte("some payload bytes for corruption")
	key := HashBytes(payload)

	cases := []struct {
		name string
		fn   func([]byte) []byte
	}{
		{"truncated-header", func(d []byte) []byte { return d[:6] }},
		{"truncated-payload", func(d []byte) []byte { return d[:len(d)-5] }},
		{"empty", func(d []byte) []byte { return nil }},
		{"flipped-payload-bit", func(d []byte) []byte { d[len(d)-1] ^= 0x40; return d }},
		{"flipped-magic", func(d []byte) []byte { d[0] ^= 0xff; return d }},
		{"stale-version", func(d []byte) []byte {
			binary.BigEndian.PutUint32(d[4:8], FormatVersion+1)
			return d
		}},
		{"extra-trailing-bytes", func(d []byte) []byte { return append(d, 0xde, 0xad) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := open(t)
			if err := s.Put(KindHints, key, payload); err != nil {
				t.Fatal(err)
			}
			mutateEntry(t, s, KindHints, key, tc.fn)
			if _, ok := s.Get(KindHints, key); ok {
				t.Error("corrupted entry loaded as a hit")
			}
		})
	}
}

func TestKindsDoNotAlias(t *testing.T) {
	s := open(t)
	payload := []byte("payload")
	key := HashBytes(payload)
	if err := s.Put(KindAST, key, payload); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(KindHints, key); ok {
		t.Error("entry stored under one kind loaded under another")
	}
	// Even a file copied across kind directories must miss: the kind is in
	// the frame, not only in the path.
	src := s.entryPath(KindAST, key)
	dst := s.entryPath(KindOutcome, key)
	os.MkdirAll(filepath.Dir(dst), 0o755)
	data, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dst, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(KindOutcome, key); ok {
		t.Error("frame written for one kind decoded under another kind")
	}
}

func TestFingerprintFraming(t *testing.T) {
	if Fingerprint("ab", "c") == Fingerprint("a", "bc") {
		t.Error("part boundaries alias")
	}
	if Fingerprint("a", "b") != Fingerprint("a", "b") {
		t.Error("fingerprint not deterministic")
	}
	if Fingerprint("a", "") == Fingerprint("a") {
		t.Error("empty trailing part aliases with absence")
	}
}

func TestProjectFingerprint(t *testing.T) {
	mk := func() *modules.Project {
		return &modules.Project{
			Name:        "p",
			Files:       map[string]string{"/app/a.js": "1;", "/app/b.js": "2;"},
			MainEntries: []string{"/app/a.js"},
			MainPrefix:  "/app",
		}
	}
	base := ProjectFingerprint(mk())
	if got := ProjectFingerprint(mk()); got != base {
		t.Error("equal projects fingerprint differently")
	}
	edited := mk()
	edited.Files["/app/b.js"] = "3;"
	if ProjectFingerprint(edited) == base {
		t.Error("content edit did not change the fingerprint")
	}
	renamed := mk()
	renamed.Name = "q"
	if ProjectFingerprint(renamed) == base {
		t.Error("project rename did not change the fingerprint")
	}
	entry := mk()
	entry.TestEntries = []string{"/app/b.js"}
	if ProjectFingerprint(entry) == base {
		t.Error("entry change did not change the fingerprint")
	}
}

// TestProjectFingerprintListBoundaries: lists are count-prefixed, so an
// entry whose value equals a neighboring section's content cannot slide
// between lists and alias.
func TestProjectFingerprintListBoundaries(t *testing.T) {
	mk := func(mains, tests []string) *modules.Project {
		return &modules.Project{
			Name:        "p",
			Files:       map[string]string{"/a.js": "1;"},
			MainEntries: mains,
			TestEntries: tests,
		}
	}
	if ProjectFingerprint(mk([]string{"test"}, nil)) == ProjectFingerprint(mk(nil, []string{"test"})) {
		t.Error("MainEntries=[test] aliases with TestEntries=[test]")
	}
	if ProjectFingerprint(mk([]string{"a", "b"}, nil)) == ProjectFingerprint(mk([]string{"a"}, []string{"b"})) {
		t.Error("entry slid across the main/test list boundary without changing the fingerprint")
	}
}

// TestOpenSweepsStaleTempFiles: a temp file orphaned by a writer killed
// between CreateTemp and Rename is collected by the next Open, while a
// fresh temp file (a possibly live concurrent writer) is left alone.
func TestOpenSweepsStaleTempFiles(t *testing.T) {
	dir := t.TempDir()
	shard := filepath.Join(dir, KindAST, "ab")
	if err := os.MkdirAll(shard, 0o755); err != nil {
		t.Fatal(err)
	}
	stale := filepath.Join(shard, ".abcd1234.tmp42")
	fresh := filepath.Join(shard, ".abcd5678.tmp43")
	for _, p := range []string{stale, fresh} {
		if err := os.WriteFile(p, []byte("partial frame"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	old := time.Now().Add(-2 * tmpMaxAge)
	if err := os.Chtimes(stale, old, old); err != nil {
		t.Fatal(err)
	}

	if _, err := Open(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Error("stale temp file survived Open")
	}
	if _, err := os.Stat(fresh); err != nil {
		t.Error("fresh temp file was swept (may belong to a live writer)")
	}
}

// TestOptionsFingerprintMismatch is the invalidation story for analysis
// options: artifacts are keyed by Fingerprint(..., optionsString), so a
// changed option resolves to a different key and the old artifact is
// simply never consulted.
func TestOptionsFingerprintMismatch(t *testing.T) {
	s := open(t)
	fp := "deadbeefdeadbeefdeadbeefdeadbeefdeadbeefdeadbeefdeadbeefdeadbeef"
	keyA := Fingerprint("outcome", "v1", fp, "dyn=true")
	keyB := Fingerprint("outcome", "v1", fp, "dyn=false")
	if keyA == keyB {
		t.Fatal("differing options produced the same key")
	}
	if err := s.Put(KindOutcome, keyA, []byte("outcome-under-A")); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(KindOutcome, keyB); ok {
		t.Error("artifact stored under one options fingerprint served under another")
	}
}

func TestASTRoundTrip(t *testing.T) {
	src := `var x = require('./lib');
function f(a, b) { if (a) { return b(); } else { while (b) { b = x[a]; } } return function g() { return 1; }; }
f(1, function () { return new f(); });
`
	prog, err := parser.Parse("/app/a.js", src)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := EncodeAST(prog)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeAST(enc)
	if err != nil {
		t.Fatal(err)
	}
	if ast.Print(dec) != ast.Print(prog) {
		t.Error("decoded AST prints differently from the original")
	}
}

func TestParseStoreRoundTrip(t *testing.T) {
	s := open(t)
	src := "function f() { return 1; }\nf();\n"
	prog, err := parser.Parse("/app/a.js", src)
	if err != nil {
		t.Fatal(err)
	}
	key := modules.SourceKey("/app/a.js", src)
	if _, ok := s.LoadAST(key); ok {
		t.Fatal("empty store loaded an AST")
	}
	s.StoreAST(key, prog)
	got, ok := s.LoadAST(key)
	if !ok {
		t.Fatal("stored AST not loadable")
	}
	if ast.Print(got) != ast.Print(prog) {
		t.Error("loaded AST prints differently")
	}
}

// TestConcurrentStores hammers one shared cache directory from two Store
// values (standing in for two processes) with overlapping keys, under the
// race detector in CI.
func TestConcurrentStores(t *testing.T) {
	dir := t.TempDir()
	s1, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	const keys = 24
	payload := func(i int) []byte { return []byte(fmt.Sprintf("payload-%d", i)) }
	var wg sync.WaitGroup
	for _, s := range []*Store{s1, s2} {
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(s *Store, g int) {
				defer wg.Done()
				for round := 0; round < 20; round++ {
					i := (g*7 + round) % keys
					key := HashBytes(payload(i))
					if got, ok := s.Get(KindAST, key); ok && !bytes.Equal(got, payload(i)) {
						t.Errorf("hit returned wrong payload for key %d", i)
						return
					}
					if err := s.Put(KindAST, key, payload(i)); err != nil {
						t.Errorf("Put: %v", err)
						return
					}
				}
			}(s, g)
		}
	}
	wg.Wait()
	// After the dust settles every key must load with the right payload.
	for i := 0; i < keys; i++ {
		key := HashBytes(payload(i))
		got, ok := s1.Get(KindAST, key)
		if !ok || !bytes.Equal(got, payload(i)) {
			t.Errorf("key %d: Get = %q, %t after concurrent writes", i, got, ok)
		}
	}
}
