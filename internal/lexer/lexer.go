// Package lexer implements a tokenizer for the JavaScript subset accepted
// by this project's front end.
//
// The lexer is newline-aware (each token records whether a line terminator
// preceded it) so the parser can implement automatic semicolon insertion,
// and it disambiguates regular-expression literals from division operators
// using the kind of the previous significant token.
package lexer

import (
	"fmt"
	"strings"

	"repro/internal/loc"
)

// Kind classifies a token.
type Kind int

// Token kinds.
const (
	EOF Kind = iota
	Ident
	Keyword
	Number
	String   // quoted string literal; cooked value in Token.Str
	Template // template literal; raw contents (between backticks) in Token.Str
	Regex    // regular expression literal; pattern in Token.Str, flags in Token.Flags
	Punct
)

func (k Kind) String() string {
	switch k {
	case EOF:
		return "EOF"
	case Ident:
		return "identifier"
	case Keyword:
		return "keyword"
	case Number:
		return "number"
	case String:
		return "string"
	case Template:
		return "template"
	case Regex:
		return "regex"
	case Punct:
		return "punctuator"
	}
	return "unknown"
}

// Token is a single lexical token.
type Token struct {
	Kind  Kind
	Text  string  // raw source text (punctuator text, identifier name, …)
	Str   string  // cooked value for String/Template/Regex tokens
	Flags string  // regex flags
	Num   float64 // numeric value for Number tokens
	Loc   loc.Loc
	// NewlineBefore reports whether a line terminator appeared between the
	// previous token and this one; it drives automatic semicolon insertion.
	NewlineBefore bool
}

func (t Token) String() string {
	if t.Kind == EOF {
		return "EOF"
	}
	return fmt.Sprintf("%s %q", t.Kind, t.Text)
}

var keywords = map[string]bool{
	"break": true, "case": true, "catch": true, "class": true, "const": true,
	"continue": true, "default": true, "delete": true, "do": true, "else": true,
	"extends": true, "false": true, "finally": true, "for": true, "function": true,
	"if": true, "in": true, "instanceof": true, "let": true, "new": true,
	"null": true, "of": true, "return": true, "static": true, "switch": true,
	"this": true, "throw": true, "true": true, "try": true, "typeof": true,
	"undefined": true, "var": true, "void": true, "while": true, "get": true,
	"set": true, "async": true, "await": true, "yield": true,
}

// Identifier-like keywords that are allowed as identifiers in most positions
// (contextual keywords). The parser treats them as identifiers unless the
// grammar position demands the keyword reading.
var contextual = map[string]bool{
	"of": true, "get": true, "set": true, "static": true, "let": true,
	"undefined": true, "async": true,
}

// Error describes a lexical error at a specific source location.
type Error struct {
	Loc loc.Loc
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Loc, e.Msg) }

// Lexer tokenizes a single source file.
type Lexer struct {
	file    string
	src     string
	pos     int
	line    int
	lineOff int // byte offset of start of current line

	prev Token // previous significant token (for regex disambiguation)
	nl   bool  // newline seen since previous token
}

// New returns a lexer for source text src attributed to the given file path.
func New(file, src string) *Lexer {
	return &Lexer{file: file, src: src, line: 1}
}

// IsKeyword reports whether name is a reserved word.
func IsKeyword(name string) bool { return keywords[name] }

// IsContextualKeyword reports whether name is a keyword usable as an
// identifier in non-keyword positions.
func IsContextualKeyword(name string) bool { return contextual[name] }

func (lx *Lexer) here() loc.Loc {
	return loc.Loc{File: lx.file, Line: lx.line, Col: lx.pos - lx.lineOff + 1}
}

func (lx *Lexer) peekByte() byte {
	if lx.pos >= len(lx.src) {
		return 0
	}
	return lx.src[lx.pos]
}

func (lx *Lexer) peekAt(off int) byte {
	if lx.pos+off >= len(lx.src) {
		return 0
	}
	return lx.src[lx.pos+off]
}

func (lx *Lexer) advance() byte {
	c := lx.src[lx.pos]
	lx.pos++
	if c == '\n' {
		lx.line++
		lx.lineOff = lx.pos
	}
	return c
}

func isIdentStart(c byte) bool {
	return c == '_' || c == '$' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool { return isIdentStart(c) || isDigit(c) }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isHexDigit(c byte) bool {
	return isDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}

// skipSpace consumes whitespace and comments, recording whether any line
// terminators were crossed.
func (lx *Lexer) skipSpace() error {
	for lx.pos < len(lx.src) {
		c := lx.peekByte()
		switch {
		case c == ' ' || c == '\t' || c == '\r':
			lx.pos++
		case c == '\n':
			lx.nl = true
			lx.advance()
		case c == '/' && lx.peekAt(1) == '/':
			for lx.pos < len(lx.src) && lx.peekByte() != '\n' {
				lx.pos++
			}
		case c == '/' && lx.peekAt(1) == '*':
			start := lx.here()
			lx.pos += 2
			closed := false
			for lx.pos < len(lx.src) {
				if lx.peekByte() == '*' && lx.peekAt(1) == '/' {
					lx.pos += 2
					closed = true
					break
				}
				if lx.peekByte() == '\n' {
					lx.nl = true
				}
				lx.advance()
			}
			if !closed {
				return &Error{start, "unterminated block comment"}
			}
		default:
			return nil
		}
	}
	return nil
}

// regexAllowed reports whether a '/' at the current position begins a regex
// literal rather than a division operator, based on the previous token.
func (lx *Lexer) regexAllowed() bool {
	switch lx.prev.Kind {
	case Ident, Number, String, Template, Regex:
		return false
	case Keyword:
		switch lx.prev.Text {
		case "this", "true", "false", "null", "undefined":
			return false
		}
		return true
	case Punct:
		switch lx.prev.Text {
		case ")", "]", "}", "++", "--":
			return false
		}
		return true
	}
	return true // start of input
}

// Next returns the next token. At end of input it returns an EOF token; it
// is safe to keep calling Next after EOF.
func (lx *Lexer) Next() (Token, error) {
	if err := lx.skipSpace(); err != nil {
		return Token{}, err
	}
	tok := Token{Loc: lx.here(), NewlineBefore: lx.nl}
	lx.nl = false
	if lx.pos >= len(lx.src) {
		tok.Kind = EOF
		lx.prev = tok
		return tok, nil
	}
	c := lx.peekByte()
	var err error
	switch {
	case isIdentStart(c):
		err = lx.lexIdent(&tok)
	case isDigit(c) || (c == '.' && isDigit(lx.peekAt(1))):
		err = lx.lexNumber(&tok)
	case c == '"' || c == '\'':
		err = lx.lexString(&tok)
	case c == '`':
		err = lx.lexTemplate(&tok)
	case c == '/' && lx.regexAllowed():
		err = lx.lexRegex(&tok)
	default:
		err = lx.lexPunct(&tok)
	}
	if err != nil {
		return Token{}, err
	}
	lx.prev = tok
	return tok, nil
}

// All tokenizes the entire input, returning the token slice including the
// final EOF token.
func (lx *Lexer) All() ([]Token, error) {
	// Pre-size for the typical token density (one token per ~4 bytes of
	// source) so the hot append loop rarely reallocates.
	toks := make([]Token, 0, len(lx.src)/4+16)
	for {
		t, err := lx.Next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.Kind == EOF {
			return toks, nil
		}
	}
}

func (lx *Lexer) lexIdent(tok *Token) error {
	start := lx.pos
	for lx.pos < len(lx.src) && isIdentPart(lx.peekByte()) {
		lx.pos++
	}
	tok.Text = lx.src[start:lx.pos]
	if keywords[tok.Text] {
		tok.Kind = Keyword
	} else {
		tok.Kind = Ident
	}
	return nil
}

func (lx *Lexer) lexNumber(tok *Token) error {
	start := lx.pos
	if lx.peekByte() == '0' && (lx.peekAt(1) == 'x' || lx.peekAt(1) == 'X') {
		lx.pos += 2
		for lx.pos < len(lx.src) && isHexDigit(lx.peekByte()) {
			lx.pos++
		}
		tok.Kind = Number
		tok.Text = lx.src[start:lx.pos]
		var v uint64
		if _, err := fmt.Sscanf(tok.Text, "%v", &v); err != nil {
			// Sscanf handles 0x prefixes for %v of integers.
			return &Error{tok.Loc, "invalid hex literal " + tok.Text}
		}
		tok.Num = float64(v)
		return nil
	}
	for lx.pos < len(lx.src) && isDigit(lx.peekByte()) {
		lx.pos++
	}
	if lx.peekByte() == '.' {
		lx.pos++
		for lx.pos < len(lx.src) && isDigit(lx.peekByte()) {
			lx.pos++
		}
	}
	if c := lx.peekByte(); c == 'e' || c == 'E' {
		save := lx.pos
		lx.pos++
		if c := lx.peekByte(); c == '+' || c == '-' {
			lx.pos++
		}
		if !isDigit(lx.peekByte()) {
			lx.pos = save
		} else {
			for lx.pos < len(lx.src) && isDigit(lx.peekByte()) {
				lx.pos++
			}
		}
	}
	tok.Kind = Number
	tok.Text = lx.src[start:lx.pos]
	if _, err := fmt.Sscanf(tok.Text, "%g", &tok.Num); err != nil {
		return &Error{tok.Loc, "invalid number literal " + tok.Text}
	}
	return nil
}

func (lx *Lexer) lexString(tok *Token) error {
	quote := lx.advance()
	var sb strings.Builder
	for {
		if lx.pos >= len(lx.src) {
			return &Error{tok.Loc, "unterminated string literal"}
		}
		c := lx.advance()
		if c == quote {
			break
		}
		if c == '\n' {
			return &Error{tok.Loc, "newline in string literal"}
		}
		if c != '\\' {
			sb.WriteByte(c)
			continue
		}
		if lx.pos >= len(lx.src) {
			return &Error{tok.Loc, "unterminated string literal"}
		}
		e := lx.advance()
		switch e {
		case 'n':
			sb.WriteByte('\n')
		case 't':
			sb.WriteByte('\t')
		case 'r':
			sb.WriteByte('\r')
		case 'b':
			sb.WriteByte('\b')
		case 'f':
			sb.WriteByte('\f')
		case 'v':
			sb.WriteByte('\v')
		case '0':
			sb.WriteByte(0)
		case 'x':
			if lx.pos+1 >= len(lx.src) || !isHexDigit(lx.peekByte()) || !isHexDigit(lx.peekAt(1)) {
				return &Error{tok.Loc, "invalid \\x escape"}
			}
			var v int
			fmt.Sscanf(lx.src[lx.pos:lx.pos+2], "%x", &v)
			lx.pos += 2
			sb.WriteRune(rune(v))
		case 'u':
			if lx.pos+3 >= len(lx.src) {
				return &Error{tok.Loc, "invalid \\u escape"}
			}
			var v int
			if _, err := fmt.Sscanf(lx.src[lx.pos:lx.pos+4], "%x", &v); err != nil {
				return &Error{tok.Loc, "invalid \\u escape"}
			}
			lx.pos += 4
			sb.WriteRune(rune(v))
		case '\n':
			// line continuation: contributes nothing
		default:
			sb.WriteByte(e)
		}
	}
	tok.Kind = String
	tok.Str = sb.String()
	tok.Text = tok.Str
	return nil
}

// lexTemplate captures the raw contents of a template literal, tracking
// ${…} nesting so embedded braces and strings do not terminate the scan
// early. The parser re-lexes the interpolated fragments.
func (lx *Lexer) lexTemplate(tok *Token) error {
	lx.advance() // consume `
	start := lx.pos
	depth := 0
	for {
		if lx.pos >= len(lx.src) {
			return &Error{tok.Loc, "unterminated template literal"}
		}
		c := lx.peekByte()
		if c == '\\' {
			lx.advance()
			if lx.pos < len(lx.src) {
				lx.advance()
			}
			continue
		}
		if depth == 0 && c == '`' {
			break
		}
		if c == '$' && lx.peekAt(1) == '{' {
			depth++
			lx.advance()
			lx.advance()
			continue
		}
		if depth > 0 {
			if c == '{' {
				depth++
			} else if c == '}' {
				depth--
			}
		}
		lx.advance()
	}
	tok.Kind = Template
	tok.Str = lx.src[start:lx.pos]
	tok.Text = tok.Str
	lx.advance() // closing `
	return nil
}

func (lx *Lexer) lexRegex(tok *Token) error {
	lx.advance() // consume /
	start := lx.pos
	inClass := false
	for {
		if lx.pos >= len(lx.src) {
			return &Error{tok.Loc, "unterminated regular expression"}
		}
		c := lx.peekByte()
		if c == '\n' {
			return &Error{tok.Loc, "unterminated regular expression"}
		}
		if c == '\\' {
			lx.advance()
			if lx.pos < len(lx.src) {
				lx.advance()
			}
			continue
		}
		if c == '[' {
			inClass = true
		} else if c == ']' {
			inClass = false
		} else if c == '/' && !inClass {
			break
		}
		lx.advance()
	}
	tok.Str = lx.src[start:lx.pos]
	lx.advance() // closing /
	fstart := lx.pos
	for lx.pos < len(lx.src) && isIdentPart(lx.peekByte()) {
		lx.pos++
	}
	tok.Flags = lx.src[fstart:lx.pos]
	tok.Kind = Regex
	tok.Text = "/" + tok.Str + "/" + tok.Flags
	return nil
}

// puncts, longest first within each leading byte, matched greedily.
var puncts = []string{
	">>>=", "...", "===", "!==", "**=", ">>>", "<<=", ">>=",
	"=>", "==", "!=", "<=", ">=", "&&", "||", "??", "++", "--",
	"+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<", ">>", "**",
	"{", "}", "(", ")", "[", "]", ";", ",", ".", "<", ">", "+", "-", "*",
	"/", "%", "&", "|", "^", "!", "~", "?", ":", "=",
}

func (lx *Lexer) lexPunct(tok *Token) error {
	rest := lx.src[lx.pos:]
	for _, p := range puncts {
		if strings.HasPrefix(rest, p) {
			tok.Kind = Punct
			tok.Text = p
			for range p {
				lx.advance()
			}
			return nil
		}
	}
	return &Error{tok.Loc, fmt.Sprintf("unexpected character %q", lx.peekByte())}
}
