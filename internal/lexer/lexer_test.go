package lexer

import (
	"strings"
	"testing"
)

func tokens(t *testing.T, src string) []Token {
	t.Helper()
	toks, err := New("test.js", src).All()
	if err != nil {
		t.Fatalf("lex %q: %v", src, err)
	}
	return toks
}

func TestIdentifiersAndKeywords(t *testing.T) {
	toks := tokens(t, "var foo = function bar() {}")
	want := []struct {
		kind Kind
		text string
	}{
		{Keyword, "var"}, {Ident, "foo"}, {Punct, "="},
		{Keyword, "function"}, {Ident, "bar"}, {Punct, "("}, {Punct, ")"},
		{Punct, "{"}, {Punct, "}"}, {EOF, ""},
	}
	if len(toks) != len(want) {
		t.Fatalf("got %d tokens, want %d: %v", len(toks), len(want), toks)
	}
	for i, w := range want {
		if toks[i].Kind != w.kind || toks[i].Text != w.text {
			t.Errorf("token %d = %v, want %s %q", i, toks[i], w.kind, w.text)
		}
	}
}

func TestNumbers(t *testing.T) {
	cases := map[string]float64{
		"0":      0,
		"42":     42,
		"3.25":   3.25,
		"1e3":    1000,
		"2.5e-1": 0.25,
		"0x10":   16,
		"0xff":   255,
		".5":     0.5,
	}
	for src, want := range cases {
		toks := tokens(t, src)
		if toks[0].Kind != Number || toks[0].Num != want {
			t.Errorf("lex %q = %v (num %v), want %v", src, toks[0], toks[0].Num, want)
		}
	}
}

func TestStringsAndEscapes(t *testing.T) {
	cases := map[string]string{
		`"hello"`:       "hello",
		`'world'`:       "world",
		`"a\nb"`:        "a\nb",
		`"t\tab"`:       "t\tab",
		`'it\'s'`:       "it's",
		`"\x41"`:        "A",
		`"A"`:           "A",
		`"back\\slash"`: `back\slash`,
	}
	for src, want := range cases {
		toks := tokens(t, src)
		if toks[0].Kind != String || toks[0].Str != want {
			t.Errorf("lex %s = %q, want %q", src, toks[0].Str, want)
		}
	}
}

func TestUnterminatedString(t *testing.T) {
	if _, err := New("t.js", `"abc`).All(); err == nil {
		t.Error("expected error for unterminated string")
	}
	if _, err := New("t.js", "\"ab\ncd\"").All(); err == nil {
		t.Error("expected error for newline in string")
	}
}

func TestTemplates(t *testing.T) {
	toks := tokens(t, "`a${x + 1}b`")
	if toks[0].Kind != Template {
		t.Fatalf("got %v, want template", toks[0])
	}
	if toks[0].Str != "a${x + 1}b" {
		t.Errorf("template raw = %q", toks[0].Str)
	}
	// Nested braces inside interpolation must not terminate early.
	toks = tokens(t, "`v=${f({a: 1})}`")
	if toks[0].Str != "v=${f({a: 1})}" {
		t.Errorf("template raw = %q", toks[0].Str)
	}
}

func TestRegexVsDivision(t *testing.T) {
	// After an identifier, / is division.
	toks := tokens(t, "a / b")
	if toks[1].Kind != Punct || toks[1].Text != "/" {
		t.Errorf("got %v, want division", toks[1])
	}
	// After '=', / starts a regex.
	toks = tokens(t, `x = /ab+c/g`)
	if toks[2].Kind != Regex {
		t.Fatalf("got %v, want regex", toks[2])
	}
	if toks[2].Str != "ab+c" || toks[2].Flags != "g" {
		t.Errorf("regex = %q flags %q", toks[2].Str, toks[2].Flags)
	}
	// After '(', regex.
	toks = tokens(t, `s.replace(/x\//, "y")`)
	var foundRegex bool
	for _, tk := range toks {
		if tk.Kind == Regex {
			foundRegex = true
			if tk.Str != `x\/` {
				t.Errorf("regex = %q", tk.Str)
			}
		}
	}
	if !foundRegex {
		t.Error("no regex token found")
	}
	// Character class containing / must not terminate the literal.
	toks = tokens(t, `x = /[/]/`)
	if toks[2].Kind != Regex || toks[2].Str != "[/]" {
		t.Errorf("got %v", toks[2])
	}
}

func TestComments(t *testing.T) {
	toks := tokens(t, "a // comment\nb /* block\ncomment */ c")
	names := []string{}
	for _, tk := range toks {
		if tk.Kind == Ident {
			names = append(names, tk.Text)
		}
	}
	if strings.Join(names, ",") != "a,b,c" {
		t.Errorf("idents = %v", names)
	}
	if !toks[1].NewlineBefore {
		t.Error("b should have NewlineBefore")
	}
	if !toks[2].NewlineBefore {
		t.Error("c should have NewlineBefore (newline inside block comment)")
	}
}

func TestUnterminatedBlockComment(t *testing.T) {
	if _, err := New("t.js", "a /* b").All(); err == nil {
		t.Error("expected error for unterminated block comment")
	}
}

func TestNewlineTracking(t *testing.T) {
	toks := tokens(t, "a\nb; c")
	if !toks[1].NewlineBefore {
		t.Error("b should have NewlineBefore")
	}
	if toks[3].NewlineBefore {
		t.Error("c should not have NewlineBefore")
	}
}

func TestLocations(t *testing.T) {
	toks := tokens(t, "ab\n  cd")
	if toks[0].Loc.Line != 1 || toks[0].Loc.Col != 1 {
		t.Errorf("ab at %v", toks[0].Loc)
	}
	if toks[1].Loc.Line != 2 || toks[1].Loc.Col != 3 {
		t.Errorf("cd at %v", toks[1].Loc)
	}
	if toks[0].Loc.File != "test.js" {
		t.Errorf("file = %q", toks[0].Loc.File)
	}
}

func TestPunctuators(t *testing.T) {
	src := "=== !== == != <= >= && || ?? ++ -- += -= => ... >>> <<"
	toks := tokens(t, src)
	want := strings.Fields(src)
	for i, w := range want {
		if toks[i].Kind != Punct || toks[i].Text != w {
			t.Errorf("token %d = %v, want %q", i, toks[i], w)
		}
	}
}

func TestSpreadVsDots(t *testing.T) {
	toks := tokens(t, "f(...args)")
	if toks[2].Text != "..." {
		t.Errorf("got %v, want ...", toks[2])
	}
}

func TestKeywordClassification(t *testing.T) {
	if !IsKeyword("function") || IsKeyword("foo") {
		t.Error("IsKeyword misclassifies")
	}
	if !IsContextualKeyword("of") || IsContextualKeyword("function") {
		t.Error("IsContextualKeyword misclassifies")
	}
}

func TestEOFStable(t *testing.T) {
	lx := New("t.js", "a")
	for i := 0; i < 3; i++ {
		if _, err := lx.Next(); err != nil {
			t.Fatal(err)
		}
	}
	tok, err := lx.Next()
	if err != nil || tok.Kind != EOF {
		t.Errorf("repeated Next after EOF = %v, %v", tok, err)
	}
}

func TestUnexpectedCharacter(t *testing.T) {
	if _, err := New("t.js", "a @ b").All(); err == nil {
		t.Error("expected error for @")
	}
}
