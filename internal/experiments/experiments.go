// Package experiments reproduces the paper's evaluation (§5): it runs the
// approximate-interpretation + static-analysis pipeline over the corpus and
// computes the data behind every table and figure — Table 1 (benchmark
// inventory), Figures 4–7 (call edges, reachable functions, resolved and
// monomorphic call sites), Table 2 (recall/precision against dynamic call
// graphs), Table 3 (running times), the vulnerability-reachability study,
// hint statistics, and the §4 relational-vs-name-only ablation.
package experiments

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/approx"
	"repro/internal/cache"
	"repro/internal/callgraph"
	"repro/internal/corpus"
	"repro/internal/dyncg"
	"repro/internal/fault"
	"repro/internal/hints"
	"repro/internal/perf"
	"repro/internal/static"
)

// Outcome is the full evaluation record for one benchmark.
type Outcome struct {
	Name  string
	Stats corpus.Stats

	HintCount    int
	VisitedRatio float64

	ApproxTime   time.Duration
	BaselineTime time.Duration
	ExtendedTime time.Duration

	Base callgraph.Metrics
	Ext  callgraph.Metrics

	HasDynCG bool
	DynEdges int
	BaseAcc  callgraph.Accuracy
	ExtAcc   callgraph.Accuracy

	// Faults are the contained failures across this benchmark's phases;
	// DegradedModules are the modules whose hints were dropped for them
	// (baseline-only fallback). Both empty on a healthy run.
	Faults          []fault.Record
	DegradedModules []string

	// Reachable function sets (for the vulnerability study).
	baseReach map[callgraph.FuncID]bool
	extReach  map[callgraph.FuncID]bool

	// baseCondensation is the baseline-final cycle structure over
	// generation-time constraint variables (static.Result.Condensation),
	// reused to pre-unify later solves of the same project (ablation arm,
	// §6 extension variants). Nil on the two-pass path.
	baseCondensation [][]static.Var

	// Name-only ablation arm, precomputed by the main run as a rolled-back
	// third phase of the incremental solve (Options.WithAblation) so that
	// RunAblationReusing needs no solve of its own. hasAbl only when the
	// run was clean (no faults, no degradation) and the dynamic comparison
	// ran, mirroring RunAblationReusing's own reuse conditions.
	hasAbl   bool
	ablEdges int
	ablMono  float64
	ablPrec  float64
}

// RunBenchmark evaluates one benchmark: pre-analysis, baseline+extended
// (incrementally — see RunBenchmarkOpts), and (if available and requested)
// the dynamic call graph.
func RunBenchmark(b *corpus.Benchmark, withDyn bool) (*Outcome, error) {
	return runBenchmark(b, Options{WithDynCG: withDyn})
}

// runBenchmark evaluates one benchmark. With opts.TwoPass false (the
// default path), baseline and extended run as one incremental solve
// (static.AnalyzeBoth): constraints are generated once, the baseline
// fixpoint is snapshotted, and the [DPR]/[DPW] hint deltas resume the same
// solver — the outcome is identical to the two-pass path (asserted by the
// differential test in internal/static), only cheaper.
//
// Robustness: faults contained during the pre-analysis (recovered panics,
// per-item deadline aborts when opts.ApproxDeadline is set, corrupt module
// sources) degrade the faulted modules to baseline-only constraints in the
// static phases and are reported on the Outcome and in the perf counters;
// the benchmark still completes.
func runBenchmark(b *corpus.Benchmark, opts Options) (*Outcome, error) {
	// Whole-outcome reuse: an unchanged project (same content fingerprint,
	// same outcome-shaping options) skips every phase. On a miss, modules
	// about to be re-analyzed are counted and the project's parses are
	// backed by the persistent store, so unchanged files inside a dirty
	// project still skip the parser.
	var cacheFP, hintsCacheKey string
	if opts.Cache != nil {
		cacheFP = cache.ProjectFingerprint(b.Project)
		if cached, ok := loadOutcome(opts.Cache, outcomeKey(cacheFP, opts, b), b); ok {
			perf.Global().AddProject()
			return cached, nil
		}
		perf.Global().AddDeltaModules(len(b.Project.Files))
		b.Project.SetParseStore(opts.Cache)
		hintsCacheKey = approxKey(cacheFP, opts)
	}

	out := &Outcome{Name: b.Project.Name, HasDynCG: b.HasDynCG}
	perf.Global().AddProject()

	st, err := corpus.ComputeStats(b)
	if err != nil {
		return nil, err
	}
	out.Stats = st

	// Pre-analysis, possibly from the hint-set artifact layer (hit when the
	// project is unchanged but a static/dyncg option invalidated the
	// outcome record). Only fault-free pre-analyses are ever cached, so a
	// hit implies no degraded modules.
	var hintSet *hints.Hints
	var degrade map[string]bool
	gotApprox := false
	if hintsCacheKey != "" {
		if rec, h, ok := loadApprox(opts.Cache, hintsCacheKey); ok {
			hintSet = h
			out.HintCount = rec.HintCount
			out.VisitedRatio = rec.VisitedRatio
			out.ApproxTime = time.Duration(rec.DurationNS)
			gotApprox = true
		}
	}
	if !gotApprox {
		approxAlloc := perf.TotalAllocBytes()
		ar, err := approx.Run(b.Project, approx.Options{Deadline: opts.ApproxDeadline})
		if err != nil {
			return nil, fmt.Errorf("%s: approx: %w", b.Project.Name, err)
		}
		out.HintCount = ar.Hints.Count()
		out.VisitedRatio = ar.VisitedRatio()
		out.ApproxTime = ar.Duration
		perf.Global().AddPhase(perf.PhaseApprox, ar.Duration)
		perf.Global().AddPhaseAlloc(perf.PhaseApprox, perf.TotalAllocBytes()-approxAlloc)

		hintSet = ar.Hints
		degrade = ar.FaultedModules()
		out.Faults = append(out.Faults, ar.Faults...)
		if hintsCacheKey != "" && len(ar.Faults) == 0 {
			storeApprox(opts.Cache, hintsCacheKey, out.HintCount, out.VisitedRatio, out.ApproxTime, hintSet)
		}
	}

	var base, ext, abl *static.Result
	if opts.TwoPass {
		base, err = static.Analyze(b.Project, static.Options{Mode: static.Baseline, SolverWorkers: opts.SolverWorkers})
		if err != nil {
			return nil, fmt.Errorf("%s: baseline: %w", b.Project.Name, err)
		}
		ext, err = static.Analyze(b.Project, static.Options{
			Mode: static.WithHints, Hints: hintSet, DegradeFiles: degrade,
			SolverWorkers: opts.SolverWorkers,
		})
		if err != nil {
			return nil, fmt.Errorf("%s: extended: %w", b.Project.Name, err)
		}
	} else {
		sopts := static.Options{
			Mode: static.WithHints, Hints: hintSet, DegradeFiles: degrade,
			SolverWorkers: opts.SolverWorkers,
		}
		// Piggy-back the §4 name-only arm on the incremental solve exactly
		// when RunAblationReusing could consume it: a clean run of a
		// dynamic-CG benchmark whose hints carry [DPW] writes (without
		// them the arm equals the relational one and needs no solve).
		if opts.WithAblation && opts.WithDynCG && b.HasDynCG &&
			len(degrade) == 0 && len(out.Faults) == 0 &&
			static.WriteHintsApply(hintSet) {
			base, ext, abl, err = static.AnalyzeBothAndAblation(b.Project, sopts)
		} else {
			base, ext, err = static.AnalyzeBoth(b.Project, sopts)
		}
		if err != nil {
			return nil, fmt.Errorf("%s: baseline+extended: %w", b.Project.Name, err)
		}
	}
	out.Faults = append(out.Faults, ext.Faults...)
	out.DegradedModules = ext.DegradedModules
	out.BaselineTime = base.Duration
	out.Base = base.Metrics()
	out.baseReach = base.Graph.Reachable(base.MainEntries)
	out.baseCondensation = base.Condensation
	perf.Global().AddPhase(perf.PhaseBaseline, base.Duration)
	perf.Global().AddPhaseAlloc(perf.PhaseBaseline, base.AllocBytes)
	out.ExtendedTime = ext.Duration
	out.Ext = ext.Metrics()
	out.extReach = ext.Graph.Reachable(ext.MainEntries)
	perf.Global().AddPhase(perf.PhaseExtended, ext.Duration)
	perf.Global().AddPhaseAlloc(perf.PhaseExtended, ext.AllocBytes)

	if opts.WithDynCG && b.HasDynCG {
		dr, err := dynGraph(b, dyncg.Options{Deadline: opts.DynCGDeadline})
		if err != nil {
			return nil, fmt.Errorf("%s: dyncg: %w", b.Project.Name, err)
		}
		out.DynEdges = dr.Graph.NumEdges()
		out.BaseAcc = callgraph.CompareWithDynamic(base.Graph, dr.Graph)
		out.ExtAcc = callgraph.CompareWithDynamic(ext.Graph, dr.Graph)
		out.Faults = append(out.Faults, dr.Faults...)
		if abl != nil && len(dr.Faults) == 0 && len(out.Faults) == 0 {
			out.hasAbl = true
			out.ablEdges = abl.Graph.NumEdges()
			out.ablMono = abl.Metrics().MonomorphicPct
			out.ablPrec = callgraph.CompareWithDynamic(abl.Graph, dr.Graph).Precision
		}
	}
	perf.Global().AddFaults(len(out.Faults), len(out.DegradedModules))
	// Cache only clean runs: a faulted or degraded outcome reflects this
	// run's containment decisions, not the project's content, and must
	// never be served to a later run.
	if opts.Cache != nil && len(out.Faults) == 0 && len(out.DegradedModules) == 0 {
		storeOutcome(opts.Cache, outcomeKey(cacheFP, opts, b), out)
	}
	return out, nil
}

// dynEntry is one memoized dynamic call-graph build.
type dynEntry struct {
	once sync.Once
	res  *dyncg.Result
	err  error
}

// dynMemo caches dynamic call graphs per *modules.Project, so an
// evaluation that needs a project's dynamic graph in several places
// (RunBenchmark accuracy, RunAblation precision) builds it at most once.
// Keyed by project pointer: corpus generation returns fresh projects per
// call, so reuse requires passing the same benchmarks to both runs (as
// cmd/evaluate does).
var dynMemo sync.Map

// dynBuilds counts actual dynamic call-graph builds (memo misses).
var dynBuilds atomic.Int64

// dynGraph returns the (memoized) dynamic call graph of a benchmark. The
// options of the first caller for a project win (the memo stores one build
// per project); all callers in one evaluation pass the same options, so
// this is only observable when mixing configurations in one process.
func dynGraph(b *corpus.Benchmark, opts dyncg.Options) (*dyncg.Result, error) {
	e, _ := dynMemo.LoadOrStore(b.Project, &dynEntry{})
	ent := e.(*dynEntry)
	ent.once.Do(func() {
		dynBuilds.Add(1)
		alloc0 := perf.TotalAllocBytes()
		ent.res, ent.err = dyncg.Build(b.Project, opts)
		if ent.err == nil {
			perf.Global().AddPhase(perf.PhaseDynCG, ent.res.Duration)
			perf.Global().AddPhaseAlloc(perf.PhaseDynCG, perf.TotalAllocBytes()-alloc0)
		}
	})
	return ent.res, ent.err
}

// Options configures a corpus evaluation run.
type Options struct {
	// WithDynCG additionally builds dynamic call graphs (where available)
	// and computes recall/precision.
	WithDynCG bool
	// Workers bounds how many benchmarks are evaluated concurrently.
	// Zero or negative means runtime.NumCPU(). Results are identical to a
	// sequential run regardless of the worker count: benchmarks share no
	// state, and outcomes are collected by input position.
	Workers int
	// TwoPass forces the legacy two-pass baseline/extended analysis (each
	// from scratch) instead of the incremental baseline→extended resume.
	// Reports are identical either way; the flag exists for cross-checking
	// and for timing the two paths against each other.
	TwoPass bool
	// ApproxDeadline is the per-worklist-item wall-clock deadline of the
	// pre-analysis (0 = unlimited). Items that trip it are aborted, recorded
	// as deadline faults, and their modules degrade to baseline-only hints.
	ApproxDeadline time.Duration
	// DynCGDeadline is the per-entry wall-clock deadline of dynamic
	// call-graph construction (0 = unlimited).
	DynCGDeadline time.Duration
	// WithAblation piggy-backs the §4 name-only ablation arm on each
	// eligible benchmark's incremental solve (baseline solved once, two
	// rolled-back deltas), so a later RunAblationReusing pass consumes it
	// without solving anything. Ignored on the two-pass path.
	WithAblation bool
	// SolverWorkers selects the constraint-solver propagation engine per
	// benchmark: 0 is the sequential pop loop, >= 1 the sharded epoch
	// engine with that many scan workers (see internal/static/parallel.go).
	// Reports are identical for every value; this multiplies with Workers,
	// so corpus runs usually pick one axis of parallelism, not both.
	SolverWorkers int
	// Cache attaches a persistent artifact store (internal/cache): parses,
	// hint sets, and whole outcomes of fault-free runs are written there
	// keyed by content fingerprints, and later runs reuse whatever still
	// matches. Reports are byte-identical with or without a cache — every
	// artifact key covers the complete input of its artifact, so a hit
	// reconstructs exactly what recomputation would have produced. Nil
	// disables caching.
	Cache *cache.Store
}

// RunCorpus evaluates the given benchmarks over a worker pool sized to the
// machine (runtime.NumCPU()), preserving input order in the results. Use
// RunCorpusOpts to pick the worker count explicitly.
func RunCorpus(bs []*corpus.Benchmark, withDyn bool) ([]*Outcome, error) {
	return RunCorpusOpts(bs, Options{WithDynCG: withDyn})
}

// RunCorpusOpts evaluates the given benchmarks with explicit options. The
// returned outcomes are positionally aligned with bs, so reports rendered
// from them are byte-identical to a sequential (Workers: 1) run.
func RunCorpusOpts(bs []*corpus.Benchmark, opts Options) ([]*Outcome, error) {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(bs) {
		workers = len(bs)
	}
	outs := make([]*Outcome, len(bs))
	if workers <= 1 {
		for i, b := range bs {
			o, err := runBenchmark(b, opts)
			if err != nil {
				return nil, err
			}
			outs[i] = o
		}
		return outs, nil
	}

	errs := make([]error, len(bs))
	var failed atomic.Bool
	work := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				o, err := runBenchmark(bs[i], opts)
				if err != nil {
					errs[i] = err
					failed.Store(true)
					continue
				}
				outs[i] = o
			}
		}()
	}
	for i := range bs {
		if failed.Load() {
			break // stop dispatching; in-flight benchmarks finish
		}
		work <- i
	}
	close(work)
	wg.Wait()
	// Report the lowest-index failure, matching what a sequential run
	// would have surfaced first.
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return outs, nil
}

// Summary aggregates a corpus run the way the paper's §5 summary boxes do.
type Summary struct {
	Projects int

	// Average per-project percentage increases (paper: +55.1% call edges,
	// +21.8% reachable functions).
	PctMoreCallEdges float64
	PctMoreReachable float64
	// Average percentage-point deltas (paper: +17.7 resolved, −1.5
	// monomorphic).
	DeltaResolvedPts    float64
	DeltaMonomorphicPts float64

	// Hint statistics (paper: 0–15,036, median 1,492).
	HintsMin, HintsMax, HintsMedian int
	// Average fraction of functions visited by approximate interpretation
	// (paper: ~60%).
	AvgVisitedRatio float64

	// Recall/precision averages over the dyn-CG subset (paper Table 2:
	// recall 75.9% → 88.1%, precision −1.5 points).
	DynProjects   int
	AvgRecallBase float64
	AvgRecallExt  float64
	AvgPrecBase   float64
	AvgPrecExt    float64
}

// Aggregate computes the summary statistics over a corpus run.
func Aggregate(outs []*Outcome) Summary {
	var s Summary
	s.Projects = len(outs)
	var hintCounts []int
	for _, o := range outs {
		if o.Base.CallEdges > 0 {
			s.PctMoreCallEdges += 100 * float64(o.Ext.CallEdges-o.Base.CallEdges) / float64(o.Base.CallEdges)
		}
		if o.Base.ReachableFunctions > 0 {
			s.PctMoreReachable += 100 * float64(o.Ext.ReachableFunctions-o.Base.ReachableFunctions) / float64(o.Base.ReachableFunctions)
		}
		s.DeltaResolvedPts += o.Ext.ResolvedPct - o.Base.ResolvedPct
		s.DeltaMonomorphicPts += o.Ext.MonomorphicPct - o.Base.MonomorphicPct
		s.AvgVisitedRatio += o.VisitedRatio
		hintCounts = append(hintCounts, o.HintCount)
		if o.HasDynCG && o.DynEdges > 0 {
			s.DynProjects++
			s.AvgRecallBase += o.BaseAcc.Recall
			s.AvgRecallExt += o.ExtAcc.Recall
			s.AvgPrecBase += o.BaseAcc.Precision
			s.AvgPrecExt += o.ExtAcc.Precision
		}
	}
	n := float64(len(outs))
	if n > 0 {
		s.PctMoreCallEdges /= n
		s.PctMoreReachable /= n
		s.DeltaResolvedPts /= n
		s.DeltaMonomorphicPts /= n
		s.AvgVisitedRatio /= n
	}
	if s.DynProjects > 0 {
		d := float64(s.DynProjects)
		s.AvgRecallBase /= d
		s.AvgRecallExt /= d
		s.AvgPrecBase /= d
		s.AvgPrecExt /= d
	}
	if len(hintCounts) > 0 {
		sort.Ints(hintCounts)
		s.HintsMin = hintCounts[0]
		s.HintsMax = hintCounts[len(hintCounts)-1]
		s.HintsMedian = hintCounts[len(hintCounts)/2]
	}
	return s
}

// VulnResult is the §5 vulnerability-reachability study.
type VulnResult struct {
	TotalVulns        int
	ReachableBaseline int
	ReachableExtended int
	ReachableFnsBase  int
	ReachableFnsExt   int
}

// VulnStudy computes vulnerability reachability over already-evaluated
// outcomes, pairing each with its benchmark's advisory set.
func VulnStudy(bs []*corpus.Benchmark, outs []*Outcome) (VulnResult, error) {
	var vr VulnResult
	byName := map[string]*Outcome{}
	for _, o := range outs {
		byName[o.Name] = o
	}
	for _, b := range bs {
		o := byName[b.Project.Name]
		if o == nil {
			continue
		}
		vulns, err := corpus.Vulnerabilities(b)
		if err != nil {
			return vr, err
		}
		vr.TotalVulns += len(vulns)
		for _, v := range vulns {
			if o.baseReach[v.Func] {
				vr.ReachableBaseline++
			}
			if o.extReach[v.Func] {
				vr.ReachableExtended++
			}
		}
		vr.ReachableFnsBase += o.Base.ReachableFunctions
		vr.ReachableFnsExt += o.Ext.ReachableFunctions
	}
	return vr, nil
}

// AblationOutcome compares the relational [DPW] rule with the §4 name-only
// strawman on one benchmark.
type AblationOutcome struct {
	Name                  string
	RelationalEdges       int
	NameOnlyEdges         int
	RelationalMonomorphic float64
	NameOnlyMonomorphic   float64
	RelationalPrecision   float64 // vs dynamic CG, when available
	NameOnlyPrecision     float64
}

// RunAblationReusing evaluates the §4 ablation, reusing the relational
// column from an already-computed outcome of the same benchmark. The main
// corpus run's extended analysis solves the exact same constraint system as
// the ablation's relational arm (hints, no degradation), so re-solving it
// here would repeat the most expensive fixpoint of the ablation; the
// incremental-equivalence tests assert the two paths agree corpus-wide.
// Falls back to RunAblation (both arms from scratch) when prior is nil, is
// for a different project, saw contained faults or degraded modules (its
// extended graph then differs from the clean relational arm), or lacks the
// dynamic-accuracy comparison the ablation table needs.
func RunAblationReusing(b *corpus.Benchmark, prior *Outcome) (*AblationOutcome, error) {
	if prior == nil || prior.Name != b.Project.Name ||
		len(prior.Faults) > 0 || len(prior.DegradedModules) > 0 ||
		(b.HasDynCG && prior.DynEdges == 0) {
		return RunAblation(b)
	}
	ar, err := approx.Run(b.Project, approx.Options{})
	if err != nil {
		return nil, err
	}
	out := &AblationOutcome{
		Name:                  b.Project.Name,
		RelationalEdges:       prior.Ext.CallEdges,
		RelationalMonomorphic: prior.Ext.MonomorphicPct,
		RelationalPrecision:   prior.ExtAcc.Precision,
	}
	// Without [DPW] write hints the two ablation arms inject identical
	// constraints, so the name-only column equals the relational one and
	// needs no solve of its own.
	if !static.WriteHintsApply(ar.Hints) {
		out.NameOnlyEdges = out.RelationalEdges
		out.NameOnlyMonomorphic = out.RelationalMonomorphic
		out.NameOnlyPrecision = out.RelationalPrecision
		return out, nil
	}
	// The main run may have precomputed the name-only arm as a rolled-back
	// third phase of its incremental solve (Options.WithAblation); then the
	// whole ablation row costs no solve at all.
	if prior.hasAbl {
		out.NameOnlyEdges = prior.ablEdges
		out.NameOnlyMonomorphic = prior.ablMono
		out.NameOnlyPrecision = prior.ablPrec
		return out, nil
	}
	abl, err := static.Analyze(b.Project, static.Options{
		Mode: static.AblationNameOnly, Hints: ar.Hints,
		PreUnify: prior.baseCondensation,
	})
	if err != nil {
		return nil, err
	}
	out.NameOnlyEdges = abl.Graph.NumEdges()
	out.NameOnlyMonomorphic = abl.Metrics().MonomorphicPct
	if b.HasDynCG {
		dr, err := dynGraph(b, dyncg.Options{})
		if err != nil {
			return nil, err
		}
		out.NameOnlyPrecision = callgraph.CompareWithDynamic(abl.Graph, dr.Graph).Precision
	}
	return out, nil
}

// RunAblation evaluates the §4 ablation on a benchmark.
func RunAblation(b *corpus.Benchmark) (*AblationOutcome, error) {
	ar, err := approx.Run(b.Project, approx.Options{})
	if err != nil {
		return nil, err
	}
	rel, err := static.Analyze(b.Project, static.Options{Mode: static.WithHints, Hints: ar.Hints})
	if err != nil {
		return nil, err
	}
	abl := rel
	if static.WriteHintsApply(ar.Hints) {
		// Only [DPW] write hints distinguish the two arms; without them the
		// name-only system is the relational one.
		abl, err = static.Analyze(b.Project, static.Options{Mode: static.AblationNameOnly, Hints: ar.Hints})
		if err != nil {
			return nil, err
		}
	}
	out := &AblationOutcome{
		Name:                  b.Project.Name,
		RelationalEdges:       rel.Graph.NumEdges(),
		NameOnlyEdges:         abl.Graph.NumEdges(),
		RelationalMonomorphic: rel.Metrics().MonomorphicPct,
		NameOnlyMonomorphic:   abl.Metrics().MonomorphicPct,
	}
	if b.HasDynCG {
		dr, err := dynGraph(b, dyncg.Options{})
		if err != nil {
			return nil, err
		}
		out.RelationalPrecision = callgraph.CompareWithDynamic(rel.Graph, dr.Graph).Precision
		out.NameOnlyPrecision = callgraph.CompareWithDynamic(abl.Graph, dr.Graph).Precision
	}
	return out, nil
}

// ScaleRow is one size tier of the scalability study: how analysis cost
// grows with program size (supporting Table 3's "approximate interpretation
// is scalable" claim with a size-vs-time curve).
type ScaleRow struct {
	Tier      string
	Projects  int
	AvgFuncs  float64
	AvgSizeKB float64
	AvgApprox time.Duration
	AvgBase   time.Duration
	AvgExt    time.Duration
}

// Scalability buckets outcomes into size tiers by function count.
func Scalability(outs []*Outcome) []ScaleRow {
	buckets := []struct {
		name     string
		min, max int
	}{
		{"tiny (<100 fns)", 0, 100},
		{"small (100–250)", 100, 250},
		{"medium (250–450)", 250, 450},
		{"large (450+)", 450, 1 << 30},
	}
	rows := make([]ScaleRow, len(buckets))
	for i, b := range buckets {
		rows[i].Tier = b.name
	}
	for _, o := range outs {
		for i, b := range buckets {
			if o.Stats.Functions >= b.min && o.Stats.Functions < b.max {
				r := &rows[i]
				r.Projects++
				r.AvgFuncs += float64(o.Stats.Functions)
				r.AvgSizeKB += float64(o.Stats.CodeSize) / 1024
				r.AvgApprox += o.ApproxTime
				r.AvgBase += o.BaselineTime
				r.AvgExt += o.ExtendedTime
				break
			}
		}
	}
	for i := range rows {
		if n := rows[i].Projects; n > 0 {
			rows[i].AvgFuncs /= float64(n)
			rows[i].AvgSizeKB /= float64(n)
			rows[i].AvgApprox /= time.Duration(n)
			rows[i].AvgBase /= time.Duration(n)
			rows[i].AvgExt /= time.Duration(n)
		}
	}
	return rows
}
