package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// RenderTable1 prints the benchmark inventory (paper Table 1) for the
// dyn-CG benchmarks: packages, modules, functions, code size.
func RenderTable1(w io.Writer, outs []*Outcome) {
	fmt.Fprintln(w, "Table 1. Benchmarks for which dynamic call graphs are available.")
	fmt.Fprintf(w, "%-28s %9s %8s %10s %10s\n", "Benchmark", "Packages", "Modules", "Functions", "Size (B)")
	rows := append([]*Outcome(nil), outs...)
	sort.Slice(rows, func(i, j int) bool { return rows[i].Stats.CodeSize < rows[j].Stats.CodeSize })
	for _, o := range rows {
		if !o.HasDynCG {
			continue
		}
		fmt.Fprintf(w, "%-28s %9d %8d %10d %10d\n",
			o.Name, o.Stats.Packages, o.Stats.Modules, o.Stats.Functions, o.Stats.CodeSize)
	}
}

// RenderFigure prints one of Figures 4–7 as a per-program series sorted by
// the baseline value, the way the paper's bar/dot charts are laid out.
func RenderFigure(w io.Writer, outs []*Outcome, fig int) {
	type row struct {
		name      string
		base, ext float64
	}
	var title, unit string
	var rows []row
	for _, o := range outs {
		var r row
		r.name = o.Name
		switch fig {
		case 4:
			title, unit = "Figure 4. Call edges.", ""
			r.base, r.ext = float64(o.Base.CallEdges), float64(o.Ext.CallEdges)
		case 5:
			title, unit = "Figure 5. Reachable functions.", ""
			r.base, r.ext = float64(o.Base.ReachableFunctions), float64(o.Ext.ReachableFunctions)
		case 6:
			title, unit = "Figure 6. Resolved call sites.", "%"
			r.base, r.ext = o.Base.ResolvedPct, o.Ext.ResolvedPct
		case 7:
			title, unit = "Figure 7. Monomorphic call sites.", "%"
			r.base, r.ext = o.Base.MonomorphicPct, o.Ext.MonomorphicPct
		}
		rows = append(rows, r)
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].base != rows[j].base {
			return rows[i].base < rows[j].base
		}
		return rows[i].name < rows[j].name
	})
	fmt.Fprintln(w, title)
	fmt.Fprintf(w, "%-28s %12s %12s %8s\n", "Benchmark (sorted by base)", "baseline"+unit, "extended"+unit, "delta")
	for _, r := range rows {
		fmt.Fprintf(w, "%-28s %12.1f %12.1f %+8.1f\n", r.name, r.base, r.ext, r.ext-r.base)
	}
}

// RenderTable2 prints recall/precision before and after (paper Table 2).
func RenderTable2(w io.Writer, outs []*Outcome) {
	fmt.Fprintln(w, "Table 2. Recall and precision (vs dynamic call graphs).")
	fmt.Fprintf(w, "%-28s %19s %21s %9s\n", "Benchmark", "Recall base→ext", "Precision base→ext", "DynEdges")
	for _, o := range outs {
		if !o.HasDynCG || o.DynEdges == 0 {
			continue
		}
		fmt.Fprintf(w, "%-28s %7.1f%% → %6.1f%% %8.1f%% → %6.1f%% %9d\n",
			o.Name, o.BaseAcc.Recall, o.ExtAcc.Recall,
			o.BaseAcc.Precision, o.ExtAcc.Precision, o.DynEdges)
	}
}

// RenderTable3 prints per-benchmark running times (paper Table 3).
func RenderTable3(w io.Writer, outs []*Outcome) {
	fmt.Fprintln(w, "Table 3. Running times: baseline static analysis, approximate")
	fmt.Fprintln(w, "interpretation, extended static analysis.")
	fmt.Fprintf(w, "%-28s %14s %14s %14s\n", "Benchmark", "Baseline", "Approx.", "Extended")
	for _, o := range outs {
		if !o.HasDynCG {
			continue
		}
		fmt.Fprintf(w, "%-28s %14s %14s %14s\n",
			o.Name, o.BaselineTime.Round(10e3), o.ApproxTime.Round(10e3), o.ExtendedTime.Round(10e3))
	}
}

// RenderSummary prints the §5 aggregate statistics.
func RenderSummary(w io.Writer, s Summary) {
	fmt.Fprintf(w, "Corpus summary (%d projects):\n", s.Projects)
	fmt.Fprintf(w, "  call edges:          %+.1f%% (paper: +55.1%%)\n", s.PctMoreCallEdges)
	fmt.Fprintf(w, "  reachable functions: %+.1f%% (paper: +21.8%%)\n", s.PctMoreReachable)
	fmt.Fprintf(w, "  resolved call sites: %+.1f points (paper: +17.7)\n", s.DeltaResolvedPts)
	fmt.Fprintf(w, "  monomorphic sites:   %+.1f points (paper: -1.5)\n", s.DeltaMonomorphicPts)
	fmt.Fprintf(w, "  hints per project:   min %d, median %d, max %d (paper: 0 / 1,492 / 15,036)\n",
		s.HintsMin, s.HintsMedian, s.HintsMax)
	fmt.Fprintf(w, "  functions visited:   %.0f%% (paper: ~60%%)\n", 100*s.AvgVisitedRatio)
	if s.DynProjects > 0 {
		fmt.Fprintf(w, "Dynamic-CG subset (%d projects):\n", s.DynProjects)
		fmt.Fprintf(w, "  recall:    %.1f%% → %.1f%% (paper: 75.9%% → 88.1%%)\n", s.AvgRecallBase, s.AvgRecallExt)
		fmt.Fprintf(w, "  precision: %.1f%% → %.1f%% (paper: -1.5 points)\n", s.AvgPrecBase, s.AvgPrecExt)
	}
}

// RenderVuln prints the vulnerability-reachability study.
func RenderVuln(w io.Writer, vr VulnResult) {
	fmt.Fprintln(w, "Vulnerability reachability (dependencies of the dyn-CG benchmarks):")
	fmt.Fprintf(w, "  known vulnerabilities:      %d (paper: 447)\n", vr.TotalVulns)
	fmt.Fprintf(w, "  reachable with baseline:    %d (paper: 52)\n", vr.ReachableBaseline)
	fmt.Fprintf(w, "  reachable with hints:       %d (paper: 55)\n", vr.ReachableExtended)
	fmt.Fprintf(w, "  total reachable functions:  %d → %d (paper: 42,661 → 53,805)\n",
		vr.ReachableFnsBase, vr.ReachableFnsExt)
}

// RenderAblation prints the §4 relational-vs-name-only comparison.
func RenderAblation(w io.Writer, outs []*AblationOutcome) {
	fmt.Fprintln(w, "Ablation: relational [DPW] hints vs name-only strawman (§4).")
	fmt.Fprintf(w, "%-28s %22s %24s\n", "Benchmark", "edges rel / name-only", "monomorphic%% rel / name")
	for _, o := range outs {
		fmt.Fprintf(w, "%-28s %10d / %9d %14.1f / %7.1f\n",
			o.Name, o.RelationalEdges, o.NameOnlyEdges,
			o.RelationalMonomorphic, o.NameOnlyMonomorphic)
	}
}

// RenderHintStats prints the per-project hint counts and visited ratios.
func RenderHintStats(w io.Writer, outs []*Outcome) {
	fmt.Fprintln(w, "Hint statistics per project:")
	fmt.Fprintf(w, "%-28s %8s %10s\n", "Benchmark", "hints", "visited%")
	for _, o := range outs {
		fmt.Fprintf(w, "%-28s %8d %9.0f%%\n", o.Name, o.HintCount, 100*o.VisitedRatio)
	}
}

// WriteFigureCSV writes one of Figures 4–7 as CSV (benchmark, baseline,
// extended), the plottable form of the paper's charts.
func WriteFigureCSV(w io.Writer, outs []*Outcome, fig int) {
	fmt.Fprintln(w, "benchmark,baseline,extended")
	rows := append([]*Outcome(nil), outs...)
	sort.Slice(rows, func(i, j int) bool { return rows[i].Name < rows[j].Name })
	for _, o := range rows {
		var base, ext float64
		switch fig {
		case 4:
			base, ext = float64(o.Base.CallEdges), float64(o.Ext.CallEdges)
		case 5:
			base, ext = float64(o.Base.ReachableFunctions), float64(o.Ext.ReachableFunctions)
		case 6:
			base, ext = o.Base.ResolvedPct, o.Ext.ResolvedPct
		case 7:
			base, ext = o.Base.MonomorphicPct, o.Ext.MonomorphicPct
		}
		fmt.Fprintf(w, "%s,%.2f,%.2f\n", o.Name, base, ext)
	}
}

// WriteTable2CSV writes the recall/precision table as CSV.
func WriteTable2CSV(w io.Writer, outs []*Outcome) {
	fmt.Fprintln(w, "benchmark,recall_base,recall_ext,precision_base,precision_ext,dyn_edges")
	for _, o := range outs {
		if !o.HasDynCG || o.DynEdges == 0 {
			continue
		}
		fmt.Fprintf(w, "%s,%.2f,%.2f,%.2f,%.2f,%d\n",
			o.Name, o.BaseAcc.Recall, o.ExtAcc.Recall,
			o.BaseAcc.Precision, o.ExtAcc.Precision, o.DynEdges)
	}
}

// Banner renders a section separator.
func Banner(w io.Writer, title string) {
	fmt.Fprintln(w, strings.Repeat("=", 72))
	fmt.Fprintln(w, title)
	fmt.Fprintln(w, strings.Repeat("=", 72))
}

// RenderScalability prints the size-vs-time curve.
func RenderScalability(w io.Writer, rows []ScaleRow) {
	fmt.Fprintln(w, "Scalability: average per-phase time by program size.")
	fmt.Fprintf(w, "%-20s %9s %10s %10s %12s %12s %12s\n",
		"Tier", "projects", "avg fns", "avg kB", "approx", "baseline", "extended")
	for _, r := range rows {
		if r.Projects == 0 {
			continue
		}
		fmt.Fprintf(w, "%-20s %9d %10.0f %10.1f %12s %12s %12s\n",
			r.Tier, r.Projects, r.AvgFuncs, r.AvgSizeKB,
			r.AvgApprox.Round(10e3), r.AvgBase.Round(10e3), r.AvgExt.Round(10e3))
	}
}
