package experiments

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/corpus"
)

// TestIncrementalMatchesTwoPassOutcomes asserts the combined
// baseline+extended path produces outcomes — and therefore rendered
// reports, which are pure functions of the timing-free outcome fields —
// identical to the legacy two-pass path.
func TestIncrementalMatchesTwoPassOutcomes(t *testing.T) {
	// Fresh benchmark sets per path so neither run sees warm parse caches.
	incBenches := slice(t, 6)
	twoBenches := slice(t, 6)

	inc, err := RunCorpusOpts(incBenches, Options{WithDynCG: true, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	two, err := RunCorpusOpts(twoBenches, Options{WithDynCG: true, Workers: 1, TwoPass: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(inc) != len(two) {
		t.Fatalf("outcome counts differ: %d vs %d", len(inc), len(two))
	}
	for i := range inc {
		a, b := strip(inc[i]), strip(two[i])
		if !reflect.DeepEqual(a, b) {
			t.Errorf("outcome %d differs:\nincremental: %+v\ntwo-pass:    %+v", i, a, b)
		}
	}

	// Spot-check the rendered reports byte for byte on the time-free
	// tables (Table 3 prints wall times, which vary run to run by nature).
	for _, render := range []struct {
		name string
		do   func(w *bytes.Buffer, outs []*Outcome)
	}{
		{"table1", func(w *bytes.Buffer, outs []*Outcome) { RenderTable1(w, outs) }},
		{"fig4", func(w *bytes.Buffer, outs []*Outcome) { RenderFigure(w, outs, 4) }},
		{"table2", func(w *bytes.Buffer, outs []*Outcome) { RenderTable2(w, outs) }},
	} {
		var bufInc, bufTwo bytes.Buffer
		render.do(&bufInc, inc)
		render.do(&bufTwo, two)
		if bufInc.String() != bufTwo.String() {
			t.Errorf("%s reports differ:\nincremental:\n%s\ntwo-pass:\n%s",
				render.name, bufInc.String(), bufTwo.String())
		}
	}
}

// TestDynCGMemoBuildsOnce asserts that one project's dynamic call graph is
// built at most once per evaluation, however many consumers ask for it.
func TestDynCGMemoBuildsOnce(t *testing.T) {
	var b *corpus.Benchmark
	for _, cand := range corpus.WithDynCG() {
		b = cand
		break
	}
	if b == nil {
		t.Fatal("no dyn-CG benchmark available")
	}
	before := dynBuilds.Load()
	if _, err := RunBenchmark(b, true); err != nil {
		t.Fatal(err)
	}
	if _, err := RunBenchmark(b, true); err != nil {
		t.Fatal(err)
	}
	if _, err := RunAblation(b); err != nil {
		t.Fatal(err)
	}
	if got := dynBuilds.Load() - before; got != 1 {
		t.Fatalf("dynamic call graph built %d times, want 1", got)
	}
}
