package experiments

import (
	"bytes"
	"testing"

	"repro/internal/cache"
	"repro/internal/corpus"
	"repro/internal/perf"
)

// TestCorpusCacheWarmRun: a second corpus run against the same store must
// be served entirely from outcome artifacts — zero parses, zero misses on
// the outcome path — and render byte-identical content reports.
func TestCorpusCacheWarmRun(t *testing.T) {
	store, err := cache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{WithDynCG: true, Cache: store}

	run := func() ([]*Outcome, []byte, perf.Snapshot) {
		t.Helper()
		bs := corpus.WithDynCG()[:4]
		perf.Global().Reset()
		outs, err := RunCorpusOpts(bs, opts)
		if err != nil {
			t.Fatal(err)
		}
		// Snapshot before rendering, like deltaArm: the vulnerability study
		// rebuilds dynamic graphs and its parses are not analysis cost.
		snap := perf.Global().Snapshot()
		reports, err := renderContentReports(bs, outs)
		if err != nil {
			t.Fatal(err)
		}
		return outs, reports, snap
	}

	outs1, reports1, cold := run()
	if cold.CacheMisses == 0 {
		t.Error("cold run missed nothing in an empty store")
	}
	if cold.CacheBytesWritten == 0 {
		t.Error("cold run wrote nothing to the store")
	}

	outs2, reports2, warm := run()
	if !bytes.Equal(reports1, reports2) {
		t.Error("warm-run content reports differ from cold run")
	}
	if warm.Parses != 0 {
		t.Errorf("warm run parsed %d files, want 0", warm.Parses)
	}
	if warm.CacheHits != int64(len(outs2)) {
		t.Errorf("warm run hit %d artifacts, want %d (one outcome per project)", warm.CacheHits, len(outs2))
	}
	if warm.CacheMisses != 0 {
		t.Errorf("warm run missed %d artifacts, want 0", warm.CacheMisses)
	}
	if warm.SolveIterations != 0 || warm.TokensDelivered != 0 {
		t.Errorf("warm run did solver work: %d iterations, %d tokens", warm.SolveIterations, warm.TokensDelivered)
	}

	// Cached outcomes must reproduce everything, including timings (they
	// are stored so warm runs render identical timing tables).
	for i := range outs1 {
		a, b := outs1[i], outs2[i]
		if a.Name != b.Name || a.HintCount != b.HintCount || a.Ext.CallEdges != b.Ext.CallEdges {
			t.Errorf("outcome %d drifted: %s/%d/%d vs %s/%d/%d",
				i, a.Name, a.HintCount, a.Ext.CallEdges, b.Name, b.HintCount, b.Ext.CallEdges)
		}
		if a.ApproxTime != b.ApproxTime || a.ExtendedTime != b.ExtendedTime {
			t.Errorf("outcome %d: cached run did not reproduce recorded timings", i)
		}
	}
}

// TestCorpusCacheEditInvalidates: editing one project's file invalidates
// exactly that project's whole-outcome artifact; the rest still hit.
func TestCorpusCacheEditInvalidates(t *testing.T) {
	store, err := cache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{WithDynCG: true, Cache: store}
	if _, err := RunCorpusOpts(corpus.WithDynCG()[:4], opts); err != nil {
		t.Fatal(err)
	}

	bs := corpus.WithDynCG()[:4]
	edited, path := applyDeltaEdit(bs[:1])
	if edited == "" {
		t.Fatal("no editable benchmark")
	}
	perf.Global().Reset()
	outs, err := RunCorpusOpts(bs, opts)
	if err != nil {
		t.Fatal(err)
	}
	snap := perf.Global().Snapshot()
	if snap.DeltaModulesRean != int64(len(bs[0].Project.Files)) {
		t.Errorf("reanalyzed %d modules, want the edited project's %d", snap.DeltaModulesRean, len(bs[0].Project.Files))
	}
	if snap.Parses != 1 {
		t.Errorf("parsed %d files, want 1 (only the edited file; the rest hit AST artifacts)", snap.Parses)
	}
	if snap.CacheHits < 3 {
		t.Errorf("cache hits = %d, want at least the 3 unchanged projects' outcomes", snap.CacheHits)
	}

	// The edited project's outcome must match a from-scratch run of it.
	fresh := corpus.WithDynCG()[:1]
	if got, _ := applyDeltaEdit(fresh); got != edited {
		t.Fatalf("deterministic edit drifted: %q vs %q (file %s)", got, edited, path)
	}
	scratch, err := RunCorpusOpts(fresh, Options{WithDynCG: true})
	if err != nil {
		t.Fatal(err)
	}
	if outs[0].Ext.CallEdges != scratch[0].Ext.CallEdges || outs[0].HintCount != scratch[0].HintCount {
		t.Errorf("edited project via cache: %d edges/%d hints; from scratch: %d/%d",
			outs[0].Ext.CallEdges, outs[0].HintCount, scratch[0].Ext.CallEdges, scratch[0].HintCount)
	}
}

// TestRunDeltaBench exercises the full four-arm benchmark harness (the
// BENCH_delta.json generator) end to end, including its in-harness
// byte-identical assertions.
func TestRunDeltaBench(t *testing.T) {
	if testing.Short() {
		t.Skip("full-corpus benchmark; skipped in -short")
	}
	snap, err := RunDeltaBench(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !snap.ReportsIdentical {
		t.Error("harness returned without asserting report identity")
	}
	if len(snap.Runs) != 4 {
		t.Fatalf("got %d runs, want 4", len(snap.Runs))
	}
	warm := snap.Run("warm")
	if warm == nil || warm.CacheMisses != 0 || warm.Parses != 0 {
		t.Errorf("warm arm not fully cached: %+v", warm)
	}
	if snap.WarmSpeedup < 5 || snap.EditSpeedup < 5 {
		t.Errorf("speedups %.1fx/%.1fx below the 5x floor", snap.WarmSpeedup, snap.EditSpeedup)
	}
	editWarm := snap.Run("edit-warm")
	if editWarm == nil || editWarm.DeltaModulesRean == 0 {
		t.Errorf("edit-warm arm reanalyzed no modules: %+v", editWarm)
	}
}
