package experiments

import (
	"fmt"
	"os"
	"strconv"
	"testing"

	"repro/internal/approx"
	"repro/internal/corpus"
	"repro/internal/dyncg"
	"repro/internal/fuzz"
	"repro/internal/static"
)

// soundnessSolverWorkers selects the solver engine for the corpus
// soundness sweep via REPRO_SOLVER_WORKERS, so CI can run the identical
// oracle against the sequential engine and the parallel epoch engine. The
// known-gap snapshot must hold verbatim for every value: the engines
// produce identical call graphs.
func soundnessSolverWorkers(t *testing.T) int {
	v := os.Getenv("REPRO_SOLVER_WORKERS")
	if v == "" {
		return 0
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 0 {
		t.Fatalf("REPRO_SOLVER_WORKERS=%q: want a non-negative integer", v)
	}
	t.Logf("solver workers: %d", n)
	return n
}

// knownSoundnessGaps lists the dynamic call-graph edges the extended
// analysis is known to miss, per benchmark, as "site -> target [bucket]"
// strings. Currently EMPTY: the last three residual gaps — all
// missing-hint, caused by the approximate interpretation never seeding the
// test-entry modules its dynamic ground truth executes — closed when the
// pre-analysis worklist started including Project.TestEntries. A new entry
// appearing here means a soundness regression; file the minimized
// reproducer via cmd/fuzz before pinning it.
var knownSoundnessGaps = map[string][]string{}

// TestCorpusSoundnessOracle checks the fuzzer's soundness oracle — every
// dynamically observed call edge must be in the extended static graph —
// across all corpus benchmarks that have dynamic call graphs, and compares
// the missing-edge set against the snapshot above.
func TestCorpusSoundnessOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("full corpus sweep; skipped with -short")
	}
	solverWorkers := soundnessSolverWorkers(t)
	checked := 0
	for _, b := range corpus.All() {
		if !b.HasDynCG {
			continue
		}
		checked++
		name := b.Project.Name
		dr, err := dynGraph(b, dyncg.Options{})
		if err != nil {
			t.Fatalf("%s: dyncg: %v", name, err)
		}
		ar, err := approx.Run(b.Project, approx.Options{})
		if err != nil {
			t.Fatalf("%s: approx: %v", name, err)
		}
		_, ext, err := static.AnalyzeBoth(b.Project, static.Options{
			Mode: static.WithHints, Hints: ar.Hints, EvalHints: true,
			SolverWorkers: solverWorkers,
		})
		if err != nil {
			t.Fatalf("%s: static: %v", name, err)
		}
		var got []string
		for _, e := range fuzz.MissingDynamicEdges(ext.Graph, dr.Graph) {
			bucket := fuzz.ClassifyEdge(b.Project.Files, e.Site, e.Target)
			got = append(got, fmt.Sprintf("%s -> %s [%s]", e.Site, e.Target, bucket))
		}
		want := knownSoundnessGaps[name]
		for _, g := range diff(got, want) {
			t.Errorf("%s: NEW missing dynamic edge (soundness regression): %s", name, g)
		}
		for _, g := range diff(want, got) {
			t.Errorf("%s: known gap no longer missing (recall improved — update knownSoundnessGaps): %s", name, g)
		}
	}
	if checked == 0 {
		t.Fatal("no benchmarks with dynamic call graphs in the corpus")
	}
	t.Logf("soundness oracle checked on %d benchmarks", checked)
}

// diff returns the elements of a not present in b.
func diff(a, b []string) []string {
	in := map[string]bool{}
	for _, s := range b {
		in[s] = true
	}
	var out []string
	for _, s := range a {
		if !in[s] {
			out = append(out, s)
		}
	}
	return out
}
