// Persistent-cache integration for the corpus driver. Two artifact layers
// ride on internal/cache's content-addressed store:
//
//   - an approx record per (project fingerprint, approx options): the hint
//     set plus the pre-analysis statistics an Outcome needs, letting a run
//     whose static options changed still skip the interpreter;
//
//   - an outcome record per (project fingerprint, pipeline options): the
//     complete evaluation record of one benchmark — metrics, accuracy,
//     reachable sets, phase durations — letting an unchanged project skip
//     every phase including the solve and the dynamic call graph.
//
// Both layers cache only fault-free runs (a degraded module must never
// poison reuse) and key on fingerprints that cover every input the artifact
// depends on, so a hit reconstructs exactly what recomputation would have
// produced; phase durations are stored too, which is what makes warm-run
// reports (including the timing tables) byte-identical to the cold run
// that populated the cache.
package experiments

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sort"
	"time"

	"repro/internal/cache"
	"repro/internal/callgraph"
	"repro/internal/corpus"
	"repro/internal/hints"
	"repro/internal/static"
)

// schemaVersion is folded into every artifact key; bump it whenever the
// record shapes below change so stale encodings become misses.
const schemaVersion = "v1"

// approxRecord is the cached pre-analysis of one project fingerprint.
type approxRecord struct {
	HintCount    int
	VisitedRatio float64
	DurationNS   int64
	HintsJSON    []byte
}

// outcomeRecord is the cached full evaluation of one benchmark. Reachable
// sets are stored sorted so encoding is deterministic.
type outcomeRecord struct {
	Name  string
	Stats corpus.Stats

	HintCount    int
	VisitedRatio float64

	ApproxNS, BaselineNS, ExtendedNS int64

	Base, Ext callgraph.Metrics

	HasDynCG bool
	DynEdges int
	BaseAcc  callgraph.Accuracy
	ExtAcc   callgraph.Accuracy

	BaseReach, ExtReach []callgraph.FuncID

	BaseCondensation [][]static.Var

	HasAbl   bool
	AblEdges int
	AblMono  float64
	AblPrec  float64
}

// approxKey is the artifact key of a project's pre-analysis: the approx
// phase depends on the project content and the per-item deadline.
func approxKey(fp string, opts Options) string {
	return cache.Fingerprint("approx", schemaVersion, fp, opts.ApproxDeadline.String())
}

// outcomeKey is the artifact key of a full benchmark evaluation. It covers
// every option that shapes the Outcome; Workers and SolverWorkers are
// excluded because outcomes are proven identical across both (PR 1/PR 6
// determinism guarantees, asserted corpus-wide in CI).
func outcomeKey(fp string, opts Options, b *corpus.Benchmark) string {
	return cache.Fingerprint("outcome", schemaVersion, fp,
		fmt.Sprintf("dyn=%t twopass=%t abl=%t", opts.WithDynCG && b.HasDynCG, opts.TwoPass, opts.WithAblation),
		opts.ApproxDeadline.String(), opts.DynCGDeadline.String())
}

// loadApprox returns the cached pre-analysis, or ok=false on any miss.
func loadApprox(store *cache.Store, key string) (rec approxRecord, h *hints.Hints, ok bool) {
	payload, ok := store.Get(cache.KindHints, key)
	if !ok {
		return rec, nil, false
	}
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&rec); err != nil {
		return rec, nil, false
	}
	h, err := hints.ReadJSON(bytes.NewReader(rec.HintsJSON))
	if err != nil {
		return rec, nil, false
	}
	return rec, h, true
}

// storeApprox caches a fault-free pre-analysis.
func storeApprox(store *cache.Store, key string, hintCount int, visited float64, d time.Duration, h *hints.Hints) {
	var hj bytes.Buffer
	if err := h.WriteJSON(&hj); err != nil {
		return
	}
	rec := approxRecord{HintCount: hintCount, VisitedRatio: visited, DurationNS: int64(d), HintsJSON: hj.Bytes()}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(rec); err != nil {
		return
	}
	_ = store.Put(cache.KindHints, key, buf.Bytes())
}

// loadOutcome reconstructs a benchmark's Outcome from the cache, or
// returns ok=false on any miss (including a name mismatch, which would
// indicate a fingerprint collision and must never serve a wrong record).
func loadOutcome(store *cache.Store, key string, b *corpus.Benchmark) (*Outcome, bool) {
	payload, ok := store.Get(cache.KindOutcome, key)
	if !ok {
		return nil, false
	}
	var rec outcomeRecord
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&rec); err != nil {
		return nil, false
	}
	if rec.Name != b.Project.Name {
		return nil, false
	}
	out := &Outcome{
		Name:         rec.Name,
		Stats:        rec.Stats,
		HintCount:    rec.HintCount,
		VisitedRatio: rec.VisitedRatio,
		ApproxTime:   time.Duration(rec.ApproxNS),
		BaselineTime: time.Duration(rec.BaselineNS),
		ExtendedTime: time.Duration(rec.ExtendedNS),
		Base:         rec.Base,
		Ext:          rec.Ext,
		HasDynCG:     rec.HasDynCG,
		DynEdges:     rec.DynEdges,
		BaseAcc:      rec.BaseAcc,
		ExtAcc:       rec.ExtAcc,

		baseReach:        make(map[callgraph.FuncID]bool, len(rec.BaseReach)),
		extReach:         make(map[callgraph.FuncID]bool, len(rec.ExtReach)),
		baseCondensation: rec.BaseCondensation,
		hasAbl:           rec.HasAbl,
		ablEdges:         rec.AblEdges,
		ablMono:          rec.AblMono,
		ablPrec:          rec.AblPrec,
	}
	for _, f := range rec.BaseReach {
		out.baseReach[f] = true
	}
	for _, f := range rec.ExtReach {
		out.extReach[f] = true
	}
	return out, true
}

// storeOutcome caches a completed benchmark evaluation. Callers only
// invoke it for fault-free runs.
func storeOutcome(store *cache.Store, key string, out *Outcome) {
	rec := outcomeRecord{
		Name:             out.Name,
		Stats:            out.Stats,
		HintCount:        out.HintCount,
		VisitedRatio:     out.VisitedRatio,
		ApproxNS:         int64(out.ApproxTime),
		BaselineNS:       int64(out.BaselineTime),
		ExtendedNS:       int64(out.ExtendedTime),
		Base:             out.Base,
		Ext:              out.Ext,
		HasDynCG:         out.HasDynCG,
		DynEdges:         out.DynEdges,
		BaseAcc:          out.BaseAcc,
		ExtAcc:           out.ExtAcc,
		BaseReach:        sortedFuncs(out.baseReach),
		ExtReach:         sortedFuncs(out.extReach),
		BaseCondensation: out.baseCondensation,
		HasAbl:           out.hasAbl,
		AblEdges:         out.ablEdges,
		AblMono:          out.ablMono,
		AblPrec:          out.ablPrec,
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(rec); err != nil {
		return
	}
	_ = store.Put(cache.KindOutcome, key, buf.Bytes())
}

func sortedFuncs(set map[callgraph.FuncID]bool) []callgraph.FuncID {
	out := make([]callgraph.FuncID, 0, len(set))
	for f := range set {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Before(out[j]) })
	return out
}
