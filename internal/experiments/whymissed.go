package experiments

import (
	"fmt"
	"io"

	"repro/internal/approx"
	"repro/internal/corpus"
	"repro/internal/dyncg"
	"repro/internal/fuzz"
	"repro/internal/static"
)

// BenchmarkAttribution is the root-cause attribution of one benchmark's
// missed dynamic edges.
type BenchmarkAttribution struct {
	Name   string
	Causes []fuzz.RootCause
}

// WhyMissedReport answers "why is this edge missing?" for every dynamic
// call edge the extended static graph lacks, across the corpus benchmarks
// that carry dynamic ground truth.
type WhyMissedReport struct {
	Benchmarks []BenchmarkAttribution
	// Fixes ranks the attributions into actionable suggestions, across all
	// benchmarks, most-covering first.
	Fixes []fuzz.Fix
}

// TotalMissed counts the attributed edges.
func (r *WhyMissedReport) TotalMissed() int {
	n := 0
	for _, b := range r.Benchmarks {
		n += len(b.Causes)
	}
	return n
}

// Unattributed counts edges no taxonomy signal matched. CI requires zero:
// every corpus miss must have a named root cause.
func (r *WhyMissedReport) Unattributed() int {
	n := 0
	for _, b := range r.Benchmarks {
		for _, rc := range b.Causes {
			if rc.Cause == fuzz.CauseUnattributed {
				n++
			}
		}
	}
	return n
}

// RunWhyMissed runs the full pipeline — dynamic call graph, approximate
// interpretation, incremental baseline→extended analysis with provenance —
// on every benchmark with dynamic ground truth and attributes each missed
// edge via the provenance journal. solverWorkers selects the solver engine
// (attribution output is identical at every value).
func RunWhyMissed(bs []*corpus.Benchmark, solverWorkers int) (*WhyMissedReport, error) {
	rep := &WhyMissedReport{}
	var all []fuzz.RootCause
	for _, b := range bs {
		if !b.HasDynCG {
			continue
		}
		name := b.Project.Name
		dr, err := dynGraph(b, dyncg.Options{})
		if err != nil {
			return nil, fmt.Errorf("%s: dyncg: %w", name, err)
		}
		ar, err := approx.Run(b.Project, approx.Options{})
		if err != nil {
			return nil, fmt.Errorf("%s: approx: %w", name, err)
		}
		_, ext, err := static.AnalyzeBoth(b.Project, static.Options{
			Mode: static.WithHints, Hints: ar.Hints, EvalHints: true,
			DegradeFiles:  ar.FaultedModules(),
			SolverWorkers: solverWorkers, Provenance: true,
		})
		if err != nil {
			return nil, fmt.Errorf("%s: static: %w", name, err)
		}
		causes := fuzz.AttributeMissedEdges(b.Project, dr.Graph, ar, ext)
		rep.Benchmarks = append(rep.Benchmarks, BenchmarkAttribution{Name: name, Causes: causes})
		all = append(all, causes...)
	}
	rep.Fixes = fuzz.RankFixes(all)
	return rep, nil
}

// RenderWhyMissed writes the attribution report: per benchmark each missed
// edge with its bucket, cause, hint frontier, and the provenance chain of
// the nearest delivered value, followed by the ranked fix list.
func RenderWhyMissed(w io.Writer, rep *WhyMissedReport) {
	fmt.Fprintf(w, "Root-cause attribution: %d missed edge(s), %d unattributed\n",
		rep.TotalMissed(), rep.Unattributed())
	for _, b := range rep.Benchmarks {
		if len(b.Causes) == 0 {
			continue
		}
		fmt.Fprintf(w, "\n%s — %d missed edge(s)\n", b.Name, len(b.Causes))
		for _, rc := range b.Causes {
			fmt.Fprintf(w, "  %s -> %s [%s]\n", rc.Edge.Site, rc.Edge.Target, rc.Bucket)
			fmt.Fprintf(w, "    cause:  %s — %s\n", rc.Cause, rc.Detail)
			if len(rc.Frontier) > 0 {
				fmt.Fprintf(w, "    hint frontier:")
				for _, f := range rc.Frontier {
					fmt.Fprintf(w, " %s", f)
				}
				fmt.Fprintln(w)
			}
			if rc.Neighbor != "" {
				fmt.Fprintf(w, "    nearest delivered: %s\n", rc.Neighbor)
				for _, step := range rc.Chain {
					fmt.Fprintf(w, "      %s\n", step)
				}
			}
		}
	}
	if len(rep.Fixes) > 0 {
		fmt.Fprintf(w, "\nRanked fixes:\n")
		for _, f := range rep.Fixes {
			fmt.Fprintf(w, "  %s\n", f)
		}
	}
}
