package experiments

import (
	"reflect"
	"testing"

	"repro/internal/corpus"
)

// stripped is an Outcome with nondeterministic fields (wall times) and
// unexported state removed, for cross-run comparison.
type stripped struct {
	Name         string
	Stats        corpus.Stats
	HintCount    int
	VisitedRatio float64
	Base, Ext    interface{}
	HasDynCG     bool
	DynEdges     int
	BaseAcc      interface{}
	ExtAcc       interface{}
}

func strip(o *Outcome) stripped {
	return stripped{
		Name:         o.Name,
		Stats:        o.Stats,
		HintCount:    o.HintCount,
		VisitedRatio: o.VisitedRatio,
		Base:         o.Base,
		Ext:          o.Ext,
		HasDynCG:     o.HasDynCG,
		DynEdges:     o.DynEdges,
		BaseAcc:      o.BaseAcc,
		ExtAcc:       o.ExtAcc,
	}
}

// TestRunCorpusDeterministic asserts that the parallel driver produces
// outcomes identical to a sequential run: same order, same names, metrics,
// hint counts, and accuracies. Run under -race this also exercises the
// shared parse cache and perf counters for data races.
func TestRunCorpusDeterministic(t *testing.T) {
	// Fresh benchmark sets for each run: projects carry their own parse
	// caches, so reusing one set would let the second run see warm caches
	// (allowed, but a cold/cold comparison is the stronger check).
	seqBenches := slice(t, 6)
	parBenches := slice(t, 6)

	seq, err := RunCorpusOpts(seqBenches, Options{WithDynCG: true, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunCorpusOpts(parBenches, Options{WithDynCG: true, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != len(par) {
		t.Fatalf("outcome counts differ: %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		s, p := strip(seq[i]), strip(par[i])
		if !reflect.DeepEqual(s, p) {
			t.Errorf("outcome %d differs:\nsequential: %+v\nparallel:   %+v", i, s, p)
		}
	}
}

// TestRunCorpusWorkersDefault checks that the worker count defaults
// sensibly and that degenerate values are accepted.
func TestRunCorpusWorkersDefault(t *testing.T) {
	bs := slice(t, 2)
	for _, workers := range []int{-1, 0, 1, 3, 64} {
		outs, err := RunCorpusOpts(bs, Options{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(outs) != len(bs) {
			t.Fatalf("workers=%d: got %d outcomes, want %d", workers, len(outs), len(bs))
		}
		for i, o := range outs {
			if o == nil || o.Name != bs[i].Project.Name {
				t.Fatalf("workers=%d: outcome %d misplaced: %+v", workers, i, o)
			}
		}
	}
}

// TestRunBenchmarkParsesOncePerFile asserts the tentpole cache property:
// after a full pipeline run (stats, approx, baseline, extended, dyncg),
// every file was parsed exactly once, with all re-reads served by the
// project's shared parse cache.
func TestRunBenchmarkParsesOncePerFile(t *testing.T) {
	b := corpus.ByName("motivating-express")
	if b == nil {
		t.Fatal("motivating-express not in corpus")
	}
	if _, err := RunBenchmark(b, true); err != nil {
		t.Fatal(err)
	}
	parses, hits := b.Project.ParseCounts()
	if parses < int64(len(b.Project.Files)) {
		t.Errorf("parses = %d, want at least one per project file (%d)", parses, len(b.Project.Files))
	}
	// The pipeline runs five phases over the same files; with the shared
	// cache the repeat reads vastly outnumber the parses.
	if hits <= parses {
		t.Errorf("cache hits = %d, parses = %d: cache not shared across phases", hits, parses)
	}
	// Exactly once: a second stats pass must not parse anything new.
	if _, err := corpus.ComputeStats(b); err != nil {
		t.Fatal(err)
	}
	parses2, _ := b.Project.ParseCounts()
	if parses2 != parses {
		t.Errorf("re-running stats re-parsed: %d → %d", parses, parses2)
	}
}
