package experiments

import (
	"bytes"
	"reflect"
	"testing"
)

// TestRunMegaBench runs a scaled-down mega tier across the sequential
// engine and several epoch-engine worker counts. RunMegaBench itself fails
// on any counter divergence between parallel rows, so this test mostly
// checks the snapshot's shape; it additionally pins that the sequential
// engine agrees with the parallel rows on this workload (effort parity on
// the mega tier is what BENCH_parallel.json records).
func TestRunMegaBench(t *testing.T) {
	snap, err := RunMegaBench(120, []int{0, 1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Rows) != 4 {
		t.Fatalf("got %d rows, want 4", len(snap.Rows))
	}
	if snap.MegaModules < 80 {
		t.Fatalf("mega project has %d modules, want a solver-bound project", snap.MegaModules)
	}
	seq, par := snap.Row(0), snap.Row(1)
	if seq == nil || par == nil {
		t.Fatal("missing workers=0 or workers=1 row")
	}
	if par.SolveIterations != seq.SolveIterations || par.TokensDelivered != seq.TokensDelivered {
		t.Fatalf("epoch engine effort differs from sequential on mega: %d iters / %d tokens vs %d / %d",
			par.SolveIterations, par.TokensDelivered, seq.SolveIterations, seq.TokensDelivered)
	}
	if par.Epochs == 0 {
		t.Fatal("workers=1 row recorded no epochs — sequential path ran instead")
	}
	if snap.ParallelShare <= 0 || snap.ParallelShare >= 1 {
		t.Fatalf("parallel share %v outside (0, 1)", snap.ParallelShare)
	}

	// The render must be a pure function of the deterministic fields plus
	// wall times; rendering twice from the same snapshot is byte-identical.
	var a, b bytes.Buffer
	snap.Render(&a)
	snap.Render(&b)
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("snapshot render is not deterministic")
	}
}

// TestCorpusSolverWorkersDeterministic runs a corpus slice through the full
// evaluation pipeline with the sequential solver and with the epoch engine
// at several worker counts, and requires the rendered report bytes to be
// identical — the tentpole's 0-byte report-diff guarantee, end to end.
func TestCorpusSolverWorkersDeterministic(t *testing.T) {
	render := func(solverWorkers int) ([]byte, []*Outcome) {
		outs, err := RunCorpusOpts(slice(t, 6), Options{
			WithDynCG: true, Workers: 1, SolverWorkers: solverWorkers,
		})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		RenderTable1(&buf, outs)
		RenderFigure(&buf, outs, 4)
		RenderFigure(&buf, outs, 5)
		RenderFigure(&buf, outs, 6)
		RenderFigure(&buf, outs, 7)
		RenderTable2(&buf, outs)
		RenderSummary(&buf, Aggregate(outs))
		return buf.Bytes(), outs
	}

	refBytes, refOuts := render(0)
	for _, workers := range []int{1, 2, 4, 8} {
		gotBytes, gotOuts := render(workers)
		if !bytes.Equal(refBytes, gotBytes) {
			t.Fatalf("solver workers=%d: rendered report differs from sequential solver", workers)
		}
		for i := range refOuts {
			if !reflect.DeepEqual(strip(refOuts[i]), strip(gotOuts[i])) {
				t.Fatalf("solver workers=%d: outcome %d differs from sequential solver:\nseq: %+v\npar: %+v",
					workers, i, strip(refOuts[i]), strip(gotOuts[i]))
			}
		}
	}
}
