package experiments

import (
	"fmt"
	"runtime"

	"repro/internal/corpus"
	"repro/internal/perf"
	"repro/internal/static"
)

// DefaultMegaWorkers are the worker-count arms of the standard mega-tier
// scaling run: the sequential engine (0) as the baseline, then the epoch
// engine at 1, 2, and 4 scan workers.
var DefaultMegaWorkers = []int{0, 1, 2, 4}

// RunMegaBench runs the solver-scaling benchmark: one baseline analysis of
// the mega-project tier (corpus.Mega) per worker count, collected into a
// perf.ParallelSnapshot for BENCH_parallel.json. Every arm rebuilds the
// project from scratch so no parse cache or solver state leaks between
// arms.
//
// The parallel engine is deterministic across worker counts by
// construction, so the effort and structure counters of every workers >= 1
// row must agree exactly; RunMegaBench returns an error (rather than a
// snapshot) when they do not, making any nondeterminism a hard failure of
// the benchmark itself. Wall times and scheduling diagnostics (steals,
// phase splits) are the only fields allowed to vary.
func RunMegaBench(nModules int, workers []int) (*perf.ParallelSnapshot, error) {
	if len(workers) == 0 {
		workers = DefaultMegaWorkers
	}
	snap := &perf.ParallelSnapshot{MaxProcs: runtime.GOMAXPROCS(0)}

	var ref *perf.ParallelRow
	for _, w := range workers {
		b := corpus.Mega(nModules)
		snap.MegaModules = len(b.Project.Files) - 1 // modules, excluding the entry
		res, err := static.Analyze(b.Project, static.Options{Mode: static.Baseline, SolverWorkers: w})
		if err != nil {
			return nil, fmt.Errorf("mega workers=%d: %w", w, err)
		}
		row := perf.ParallelRow{
			SolverWorkers:    w,
			SolveWallMS:      float64(res.SolveWall.Microseconds()) / 1000,
			ScanMS:           float64(res.Parallel.ScanNS) / 1e6,
			ApplyMS:          float64(res.Parallel.ApplyNS) / 1e6,
			SerialTailMS:     float64(res.Parallel.TailNS) / 1e6,
			SweepOverlapMS:   float64(res.Parallel.SweepOverlapNS) / 1e6,
			Epochs:           res.Parallel.Epochs,
			Steals:           res.Parallel.Steals,
			CrossShard:       res.Parallel.CrossShard,
			AsyncSweeps:      res.Parallel.AsyncSweeps,
			SolveIterations:  res.SolveIterations,
			TokensDelivered:  res.TokensDelivered,
			CyclesCollapsed:  res.Structure.CyclesCollapsed,
			RedundantSkipped: res.Structure.RedundantSkipped,
		}
		if w >= 1 {
			if ref == nil {
				r := row
				ref = &r
			} else if row.SolveIterations != ref.SolveIterations ||
				row.TokensDelivered != ref.TokensDelivered ||
				row.CyclesCollapsed != ref.CyclesCollapsed ||
				row.RedundantSkipped != ref.RedundantSkipped ||
				row.Epochs != ref.Epochs ||
				row.CrossShard != ref.CrossShard ||
				row.AsyncSweeps != ref.AsyncSweeps {
				return nil, fmt.Errorf(
					"mega workers=%d: deterministic counters diverged from workers=%d: %+v vs %+v",
					w, ref.SolverWorkers, row, *ref)
			}
		}
		snap.Rows = append(snap.Rows, row)
	}

	if r0, r4 := snap.Row(0), snap.Row(4); r0 != nil && r4 != nil && r4.SolveWallMS > 0 {
		snap.SpeedupAt4 = r0.SolveWallMS / r4.SolveWallMS
	}
	if r1 := snap.Row(1); r1 != nil && r1.SolveWallMS > 0 {
		snap.ParallelShare = (r1.ScanMS + r1.ApplyMS) / r1.SolveWallMS
	}
	return snap, nil
}
