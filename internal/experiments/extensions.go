package experiments

import (
	"fmt"
	"io"

	"repro/internal/approx"
	"repro/internal/corpus"
	"repro/internal/modules"
	"repro/internal/static"
)

// ExtensionOutcome measures the effect of the §6 "potential improvements"
// implemented in this reproduction: the unknown-function-arguments
// property-name hints, the dynamically-generated-code hints, and the
// per-package hint-reuse cache.
type ExtensionOutcome struct {
	Name string

	// Call edges under: plain hints, +unknown-arg hints, +eval-code hints,
	// +both.
	EdgesPlain      int
	EdgesUnknownArg int
	EdgesEvalCode   int
	EdgesBoth       int

	// Hint-reuse statistics over the project's packages.
	Packages    int
	CacheHits   int
	CacheMisses int
}

// RunExtensions evaluates the §6 extensions on one project.
func RunExtensions(project *modules.Project, cache *approx.Cache) (*ExtensionOutcome, error) {
	ar, err := approx.Run(project, approx.Options{})
	if err != nil {
		return nil, err
	}
	out := &ExtensionOutcome{Name: project.Name}

	analyze := func(unknownArgs, evalCode bool) (int, error) {
		res, err := static.Analyze(project, static.Options{
			Mode:            static.WithHints,
			Hints:           ar.Hints,
			UnknownArgHints: unknownArgs,
			EvalHints:       evalCode,
		})
		if err != nil {
			return 0, err
		}
		return res.Graph.NumEdges(), nil
	}
	if out.EdgesPlain, err = analyze(false, false); err != nil {
		return nil, err
	}
	if out.EdgesUnknownArg, err = analyze(true, false); err != nil {
		return nil, err
	}
	if out.EdgesEvalCode, err = analyze(false, true); err != nil {
		return nil, err
	}
	if out.EdgesBoth, err = analyze(true, true); err != nil {
		return nil, err
	}

	if cache != nil {
		h0, m0 := cache.Hits, cache.Misses
		if _, err := approx.RunWithCache(project, cache, approx.Options{}); err != nil {
			return nil, err
		}
		out.CacheHits = cache.Hits - h0
		out.CacheMisses = cache.Misses - m0
		out.Packages = len(project.Packages()) - 1 // excluding <main>
	}
	return out, nil
}

// RunExtensionsCorpus evaluates the §6 extensions over benchmarks sharing
// one hint cache (so identical packages across projects hit the cache).
func RunExtensionsCorpus(bs []*corpus.Benchmark) ([]*ExtensionOutcome, error) {
	cache := approx.NewCache()
	var outs []*ExtensionOutcome
	for _, b := range bs {
		o, err := RunExtensions(b.Project, cache)
		if err != nil {
			return nil, err
		}
		outs = append(outs, o)
	}
	return outs, nil
}

// RenderExtensions prints the §6-extension comparison.
func RenderExtensions(w io.Writer, outs []*ExtensionOutcome) {
	fmt.Fprintln(w, "§6 extensions: call edges under each hint-consumption variant,")
	fmt.Fprintln(w, "and per-package hint-cache reuse.")
	fmt.Fprintf(w, "%-28s %8s %8s %8s %8s %14s\n",
		"Benchmark", "plain", "+args", "+eval", "+both", "cache hit/miss")
	for _, o := range outs {
		fmt.Fprintf(w, "%-28s %8d %8d %8d %8d %9d/%d\n",
			o.Name, o.EdgesPlain, o.EdgesUnknownArg, o.EdgesEvalCode, o.EdgesBoth,
			o.CacheHits, o.CacheMisses)
	}
}
