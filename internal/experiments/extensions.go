package experiments

import (
	"fmt"
	"io"

	"repro/internal/approx"
	"repro/internal/corpus"
	"repro/internal/modules"
	"repro/internal/static"
)

// ExtensionOutcome measures the effect of the §6 "potential improvements"
// implemented in this reproduction: the unknown-function-arguments
// property-name hints, the dynamically-generated-code hints, and the
// per-package hint-reuse cache.
type ExtensionOutcome struct {
	Name string

	// Call edges under: plain hints, +unknown-arg hints, +eval-code hints,
	// +both.
	EdgesPlain      int
	EdgesUnknownArg int
	EdgesEvalCode   int
	EdgesBoth       int

	// Hint-reuse statistics over the project's packages.
	Packages    int
	CacheHits   int
	CacheMisses int
}

// RunExtensions evaluates the §6 extensions on one project. prior, when
// non-nil, is the main corpus run's outcome for the same project: its
// extended analysis solved the identical constraint system as the
// plain-hints variant, so that re-solve is skipped (only when the outcome
// is fault-free — degradation changes the extended graph), and its
// baseline cycle condensation pre-unifies the remaining variant solves
// (valid regardless of faults: the baseline graph never depends on hints).
// Pass nil to solve all four variants from scratch.
func RunExtensions(project *modules.Project, cache *approx.Cache, prior *Outcome) (*ExtensionOutcome, error) {
	ar, err := approx.Run(project, approx.Options{})
	if err != nil {
		return nil, err
	}
	out := &ExtensionOutcome{Name: project.Name}

	var preUnify [][]static.Var
	if prior != nil && prior.Name == project.Name {
		preUnify = prior.baseCondensation
	}
	analyze := func(unknownArgs, evalCode bool) (int, error) {
		res, err := static.Analyze(project, static.Options{
			Mode:            static.WithHints,
			Hints:           ar.Hints,
			UnknownArgHints: unknownArgs,
			EvalHints:       evalCode,
			PreUnify:        preUnify,
		})
		if err != nil {
			return 0, err
		}
		return res.Graph.NumEdges(), nil
	}
	if prior != nil && prior.Name == project.Name &&
		len(prior.Faults) == 0 && len(prior.DegradedModules) == 0 {
		out.EdgesPlain = prior.Ext.CallEdges
	} else if out.EdgesPlain, err = analyze(false, false); err != nil {
		return nil, err
	}

	// Variants whose hint delta is empty solve the identical constraint
	// system as an already-solved variant; reuse that result instead of
	// re-running the fixpoint (most projects observe no proxy reads or eval
	// code, so this skips the bulk of the variant solves).
	argsApply := static.UnknownArgHintsApply(ar.Hints)
	evalApply := static.EvalHintsApply(ar.Hints)
	if !argsApply {
		out.EdgesUnknownArg = out.EdgesPlain
	} else if out.EdgesUnknownArg, err = analyze(true, false); err != nil {
		return nil, err
	}
	if !evalApply {
		out.EdgesEvalCode = out.EdgesPlain
	} else if out.EdgesEvalCode, err = analyze(false, true); err != nil {
		return nil, err
	}
	switch {
	case !argsApply && !evalApply:
		out.EdgesBoth = out.EdgesPlain
	case !argsApply:
		out.EdgesBoth = out.EdgesEvalCode
	case !evalApply:
		out.EdgesBoth = out.EdgesUnknownArg
	default:
		if out.EdgesBoth, err = analyze(true, true); err != nil {
			return nil, err
		}
	}

	if cache != nil {
		h0, m0 := cache.Hits, cache.Misses
		if _, err := approx.RunWithCache(project, cache, approx.Options{}); err != nil {
			return nil, err
		}
		out.CacheHits = cache.Hits - h0
		out.CacheMisses = cache.Misses - m0
		out.Packages = len(project.Packages()) - 1 // excluding <main>
	}
	return out, nil
}

// RunExtensionsCorpus evaluates the §6 extensions over benchmarks sharing
// one hint cache (so identical packages across projects hit the cache).
// prior maps benchmark name to the main corpus run's outcome for that
// project, letting each extension evaluation reuse its solved results (see
// RunExtensions); pass nil to solve everything from scratch.
func RunExtensionsCorpus(bs []*corpus.Benchmark, prior map[string]*Outcome) ([]*ExtensionOutcome, error) {
	cache := approx.NewCache()
	var outs []*ExtensionOutcome
	for _, b := range bs {
		o, err := RunExtensions(b.Project, cache, prior[b.Project.Name])
		if err != nil {
			return nil, err
		}
		outs = append(outs, o)
	}
	return outs, nil
}

// RenderExtensions prints the §6-extension comparison.
func RenderExtensions(w io.Writer, outs []*ExtensionOutcome) {
	fmt.Fprintln(w, "§6 extensions: call edges under each hint-consumption variant,")
	fmt.Fprintln(w, "and per-package hint-cache reuse.")
	fmt.Fprintf(w, "%-28s %8s %8s %8s %8s %14s\n",
		"Benchmark", "plain", "+args", "+eval", "+both", "cache hit/miss")
	for _, o := range outs {
		fmt.Fprintf(w, "%-28s %8d %8d %8d %8d %9d/%d\n",
			o.Name, o.EdgesPlain, o.EdgesUnknownArg, o.EdgesEvalCode, o.EdgesBoth,
			o.CacheHits, o.CacheMisses)
	}
}
