package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/corpus"
	"repro/internal/fuzz"
)

// TestWhyMissedAttributionComplete is the CI contract of the root-cause
// engine on the corpus: every dynamic edge the extended analysis misses
// must carry a taxonomy cause — zero unattributed — and the missed-edge
// count must match the known-gap snapshot (currently empty: test-entry
// seeding interprets the test modules, so no missing-hint gaps remain).
func TestWhyMissedAttributionComplete(t *testing.T) {
	if testing.Short() {
		t.Skip("full corpus pipeline; skipped with -short")
	}
	rep, err := RunWhyMissed(corpus.All(), soundnessSolverWorkers(t))
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Unattributed(); got != 0 {
		t.Errorf("%d missed edge(s) unattributed (CI requires every miss to have a named root cause)", got)
	}
	total := 0
	for _, gaps := range knownSoundnessGaps {
		total += len(gaps)
	}
	if rep.TotalMissed() != total {
		t.Errorf("attributed %d missed edges, knownSoundnessGaps lists %d", rep.TotalMissed(), total)
	}
	for _, b := range rep.Benchmarks {
		for _, rc := range b.Causes {
			if rc.Cause != fuzz.CauseMissingHint {
				t.Errorf("%s: %s -> %s attributed %s, want missing-hint (update this test if the corpus changed)",
					b.Name, rc.Edge.Site, rc.Edge.TargetDesc(), rc.Cause)
			}
		}
	}
	var buf bytes.Buffer
	RenderWhyMissed(&buf, rep)
	out := buf.String()
	if !strings.Contains(out, "0 unattributed") {
		t.Errorf("report header missing unattributed count:\n%s", out)
	}
	if rep.TotalMissed() > 0 && !strings.Contains(out, "Ranked fixes:") {
		t.Errorf("report has misses but no ranked fix list:\n%s", out)
	}
}

// TestWhyMissedDeterministicAcrossWorkers renders the full attribution
// report under the sequential engine and the parallel epoch engine: the
// output — causes, frontiers, chains, fix ranking — must be byte-identical
// at every -solver-workers value.
func TestWhyMissedDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("three corpus sweeps; skipped with -short")
	}
	render := func(workers int) string {
		rep, err := RunWhyMissed(corpus.All(), workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		var buf bytes.Buffer
		RenderWhyMissed(&buf, rep)
		return buf.String()
	}
	want := render(0)
	for _, workers := range []int{1, 4} {
		if got := render(workers); got != want {
			t.Errorf("attribution report differs between -solver-workers 0 and %d:\n--- workers=0 ---\n%s--- workers=%d ---\n%s",
				workers, want, workers, got)
		}
	}
}

// TestSoundnessGapRatchet is the recall ratchet: the known-gap snapshot may
// only shrink. The floor reached zero when test-entry seeding closed the
// last three missing-hint gaps; raising it requires deliberately accepting
// a soundness regression here.
func TestSoundnessGapRatchet(t *testing.T) {
	const maxKnownGaps = 0
	total := 0
	for name, gaps := range knownSoundnessGaps {
		total += len(gaps)
		if len(gaps) == 0 {
			t.Errorf("%s: empty gap list — delete the entry instead", name)
		}
	}
	if total > maxKnownGaps {
		t.Errorf("knownSoundnessGaps lists %d edges, ratchet allows at most %d — recall may only improve",
			total, maxKnownGaps)
	}
}
