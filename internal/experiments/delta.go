// The delta benchmark: cold vs warm vs one-file-edit corpus evaluation
// against one persistent cache directory, with the byte-identical-reports
// guarantee asserted in-harness. This is the evidence behind the cache
// architecture's two claims: a warm unchanged corpus costs only artifact
// loads, and a warm one-file edit costs one project's re-analysis plus
// artifact loads — both with reports identical to from-scratch runs.
package experiments

import (
	"bytes"
	"fmt"
	"time"

	"repro/internal/cache"
	"repro/internal/corpus"
	"repro/internal/perf"
)

// deltaProbe is the one-file edit applied by the benchmark: appending a
// function changes the file's content hash and the project's function
// count, so the dirty project measurably re-analyzes and the edit is
// visible in the content-derived reports (Table 1's function column).
const deltaProbe = "\nfunction __deltaProbe() { return __deltaProbe; }\n"

// applyDeltaEdit edits the first benchmark with an editable main entry and
// returns its project name and the edited path.
func applyDeltaEdit(bs []*corpus.Benchmark) (project, file string) {
	for _, b := range bs {
		if len(b.Project.MainEntries) == 0 {
			continue
		}
		path := b.Project.MainEntries[0]
		if src, ok := b.Project.Files[path]; ok {
			b.Project.Files[path] = src + deltaProbe
			return b.Project.Name, path
		}
	}
	return "", ""
}

// renderContentReports renders every content-derived report of a corpus
// run into one byte buffer: Table 1, Figures 4–7, Table 2, the
// vulnerability study, hint statistics, and the summary. Timing tables
// (Table 3, scalability) are excluded on purpose — they render measured
// wall clock, which is a property of the run, not of the analyzed content,
// so they are not part of the byte-identical contract.
func renderContentReports(bs []*corpus.Benchmark, outs []*Outcome) ([]byte, error) {
	var buf bytes.Buffer
	RenderTable1(&buf, outs)
	for fig := 4; fig <= 7; fig++ {
		RenderFigure(&buf, outs, fig)
	}
	RenderTable2(&buf, outs)
	var dynBenches []*corpus.Benchmark
	for _, b := range bs {
		if b.HasDynCG {
			dynBenches = append(dynBenches, b)
		}
	}
	vr, err := VulnStudy(dynBenches, outs)
	if err != nil {
		return nil, err
	}
	RenderVuln(&buf, vr)
	RenderHintStats(&buf, outs)
	RenderSummary(&buf, Aggregate(outs))
	return buf.Bytes(), nil
}

// deltaArm runs one benchmark arm: a full corpus evaluation (fresh
// benchmark values, so no in-memory state leaks between arms) against the
// given store (nil = no cache), optionally with the one-file edit applied.
func deltaArm(label string, store *cache.Store, edit bool, opts Options) (row perf.DeltaRow, reports []byte, project, file string, err error) {
	bs := corpus.All()
	if edit {
		project, file = applyDeltaEdit(bs)
		if project == "" {
			return row, nil, "", "", fmt.Errorf("delta: no editable benchmark in corpus")
		}
	}
	perf.Global().Reset()
	start := time.Now()
	runOpts := opts
	runOpts.WithDynCG = true
	runOpts.Cache = store
	outs, err := RunCorpusOpts(bs, runOpts)
	if err != nil {
		return row, nil, "", "", fmt.Errorf("delta %s: %w", label, err)
	}
	wall := time.Since(start)
	snap := perf.Global().Snapshot()
	snap.WallMS = float64(wall.Microseconds()) / 1000
	reports, err = renderContentReports(bs, outs)
	if err != nil {
		return row, nil, "", "", fmt.Errorf("delta %s: %w", label, err)
	}
	return perf.DeltaRowFrom(label, snap), reports, project, file, nil
}

// RunDeltaBench measures the persistent cache end to end against the full
// corpus, producing BENCH_delta.json. Four arms run against dir (which
// should start empty for the cold arm to be genuinely cold):
//
//	cold          empty cache, full corpus — populates the store
//	warm          unchanged corpus, same store — must be all outcome hits
//	edit-warm     one file edited, same store — one project re-analyzes
//	edit-scratch  same edited corpus, no cache — the from-scratch referee
//
// Two report comparisons are asserted before a snapshot is produced, and
// a mismatch is a hard error of the benchmark itself: warm must render
// byte-identical content reports to cold (same corpus, so any drift means
// the cache served a wrong artifact), and edit-warm must render
// byte-identical content reports to edit-scratch (the delta path must be
// indistinguishable from a restart on the edited corpus).
func RunDeltaBench(dir string, opts Options) (*perf.DeltaSnapshot, error) {
	store, err := cache.Open(dir)
	if err != nil {
		return nil, err
	}
	snap := &perf.DeltaSnapshot{CorpusProjects: corpus.Size}

	cold, coldReports, _, _, err := deltaArm("cold", store, false, opts)
	if err != nil {
		return nil, err
	}
	warm, warmReports, _, _, err := deltaArm("warm", store, false, opts)
	if err != nil {
		return nil, err
	}
	if !bytes.Equal(coldReports, warmReports) {
		return nil, fmt.Errorf("delta: warm-run reports differ from cold run (cache served a wrong artifact)")
	}
	editWarm, editWarmReports, project, file, err := deltaArm("edit-warm", store, true, opts)
	if err != nil {
		return nil, err
	}
	snap.EditedProject, snap.EditedFile = project, file
	editScratch, editScratchReports, _, _, err := deltaArm("edit-scratch", nil, true, opts)
	if err != nil {
		return nil, err
	}
	if !bytes.Equal(editWarmReports, editScratchReports) {
		return nil, fmt.Errorf("delta: edit-warm reports differ from from-scratch analysis of the edited corpus")
	}
	if bytes.Equal(coldReports, editWarmReports) {
		return nil, fmt.Errorf("delta: edit did not change the reports — the probe edit was not analyzed")
	}
	snap.ReportsIdentical = true

	snap.Runs = []perf.DeltaRow{cold, warm, editWarm, editScratch}
	if warm.WallMS > 0 {
		snap.WarmSpeedup = cold.WallMS / warm.WallMS
	}
	if editWarm.WallMS > 0 {
		snap.EditSpeedup = cold.WallMS / editWarm.WallMS
	}
	return snap, nil
}
