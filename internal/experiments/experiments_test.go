package experiments

import (
	"strings"
	"testing"

	"repro/internal/corpus"
)

func slice(t *testing.T, n int) []*corpus.Benchmark {
	t.Helper()
	bs := corpus.WithDynCG()
	if len(bs) < n {
		t.Fatalf("corpus too small: %d", len(bs))
	}
	return bs[:n]
}

func TestRunBenchmark(t *testing.T) {
	b := corpus.ByName("motivating-express")
	o, err := RunBenchmark(b, true)
	if err != nil {
		t.Fatal(err)
	}
	if o.Name != "motivating-express" || !o.HasDynCG {
		t.Errorf("outcome header wrong: %+v", o)
	}
	if o.Stats.Functions == 0 || o.Stats.Modules == 0 {
		t.Error("stats empty")
	}
	if o.HintCount == 0 {
		t.Error("no hints")
	}
	if o.Ext.CallEdges <= o.Base.CallEdges {
		t.Error("no call-edge improvement")
	}
	if o.DynEdges == 0 {
		t.Error("no dynamic edges")
	}
	if o.ExtAcc.Recall < o.BaseAcc.Recall {
		t.Error("recall regressed")
	}
	if o.ApproxTime <= 0 || o.BaselineTime <= 0 || o.ExtendedTime <= 0 {
		t.Error("missing timings")
	}
}

func TestAggregate(t *testing.T) {
	outs, err := RunCorpus(slice(t, 6), true)
	if err != nil {
		t.Fatal(err)
	}
	s := Aggregate(outs)
	if s.Projects != 6 {
		t.Errorf("Projects = %d", s.Projects)
	}
	if s.DynProjects == 0 {
		t.Error("no dyn projects aggregated")
	}
	if s.HintsMax < s.HintsMedian || s.HintsMedian < s.HintsMin {
		t.Errorf("hint ordering broken: %d/%d/%d", s.HintsMin, s.HintsMedian, s.HintsMax)
	}
	if s.AvgVisitedRatio <= 0 || s.AvgVisitedRatio > 1 {
		t.Errorf("visited ratio = %v", s.AvgVisitedRatio)
	}
}

func TestVulnStudyConsistency(t *testing.T) {
	bs := slice(t, 5)
	outs, err := RunCorpus(bs, false)
	if err != nil {
		t.Fatal(err)
	}
	vr, err := VulnStudy(bs, outs)
	if err != nil {
		t.Fatal(err)
	}
	if vr.ReachableBaseline > vr.TotalVulns || vr.ReachableExtended > vr.TotalVulns {
		t.Errorf("reachable exceeds total: %+v", vr)
	}
	if vr.ReachableExtended < vr.ReachableBaseline {
		t.Errorf("hints lost advisory reachability: %+v", vr)
	}
	// Per-slice sums equal whole-slice result.
	var sum VulnResult
	for i := range bs {
		one, err := VulnStudy(bs[i:i+1], outs[i:i+1])
		if err != nil {
			t.Fatal(err)
		}
		sum.TotalVulns += one.TotalVulns
		sum.ReachableBaseline += one.ReachableBaseline
		sum.ReachableExtended += one.ReachableExtended
	}
	if sum.TotalVulns != vr.TotalVulns || sum.ReachableBaseline != vr.ReachableBaseline {
		t.Errorf("slice sums disagree: %+v vs %+v", sum, vr)
	}
}

func TestRunAblation(t *testing.T) {
	b := corpus.ByName("motivating-express")
	o, err := RunAblation(b)
	if err != nil {
		t.Fatal(err)
	}
	if o.NameOnlyEdges < o.RelationalEdges {
		t.Errorf("name-only should have at least as many edges: %d vs %d",
			o.NameOnlyEdges, o.RelationalEdges)
	}
	if o.NameOnlyMonomorphic > o.RelationalMonomorphic {
		t.Errorf("name-only should be no more monomorphic: %.1f vs %.1f",
			o.NameOnlyMonomorphic, o.RelationalMonomorphic)
	}
}

func TestRenderers(t *testing.T) {
	outs, err := RunCorpus(slice(t, 4), true)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	RenderTable1(&sb, outs)
	RenderFigure(&sb, outs, 4)
	RenderFigure(&sb, outs, 5)
	RenderFigure(&sb, outs, 6)
	RenderFigure(&sb, outs, 7)
	RenderTable2(&sb, outs)
	RenderTable3(&sb, outs)
	RenderSummary(&sb, Aggregate(outs))
	RenderHintStats(&sb, outs)
	Banner(&sb, "x")
	out := sb.String()
	for _, want := range []string{
		"Table 1", "Figure 4", "Figure 5", "Figure 6", "Figure 7",
		"Table 2", "Table 3", "Corpus summary", "Hint statistics",
		"motivating-express",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered output missing %q", want)
		}
	}
}

func TestOutcomeDeterminism(t *testing.T) {
	b := corpus.ByName("mini-middleware")
	o1, err := RunBenchmark(b, true)
	if err != nil {
		t.Fatal(err)
	}
	o2, err := RunBenchmark(b, true)
	if err != nil {
		t.Fatal(err)
	}
	if o1.Base.CallEdges != o2.Base.CallEdges || o1.Ext.CallEdges != o2.Ext.CallEdges {
		t.Error("edge counts vary between runs")
	}
	if o1.BaseAcc != o2.BaseAcc || o1.ExtAcc != o2.ExtAcc {
		t.Error("accuracy varies between runs")
	}
	if o1.HintCount != o2.HintCount {
		t.Error("hint counts vary between runs")
	}
}

func TestRunExtensions(t *testing.T) {
	b := corpus.ByName("mini-schema")
	o, err := RunExtensions(b.Project, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	// mini-schema builds getters through eval: the eval-code extension must
	// add edges over the plain run.
	if o.EdgesEvalCode <= o.EdgesPlain {
		t.Errorf("eval-code extension added nothing: plain=%d eval=%d",
			o.EdgesPlain, o.EdgesEvalCode)
	}
	if o.EdgesBoth < o.EdgesEvalCode {
		t.Errorf("both extensions lost edges: %d < %d", o.EdgesBoth, o.EdgesEvalCode)
	}
	if o.EdgesUnknownArg < o.EdgesPlain {
		t.Errorf("unknown-arg extension removed edges: %d < %d", o.EdgesUnknownArg, o.EdgesPlain)
	}
	var sb strings.Builder
	RenderExtensions(&sb, []*ExtensionOutcome{o})
	if !strings.Contains(sb.String(), "mini-schema") {
		t.Error("render missing benchmark name")
	}
}

func TestScalability(t *testing.T) {
	outs, err := RunCorpus(slice(t, 8), false)
	if err != nil {
		t.Fatal(err)
	}
	rows := Scalability(outs)
	total := 0
	for _, r := range rows {
		total += r.Projects
		if r.Projects > 0 && (r.AvgApprox <= 0 || r.AvgBase <= 0) {
			t.Errorf("tier %s has zero averages: %+v", r.Tier, r)
		}
	}
	if total != 8 {
		t.Errorf("tier assignment lost projects: %d of 8", total)
	}
	var sb strings.Builder
	RenderScalability(&sb, rows)
	if !strings.Contains(sb.String(), "Scalability") {
		t.Error("render output wrong")
	}
}
