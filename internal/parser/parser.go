// Package parser implements a recursive-descent parser for the JavaScript
// subset, producing internal/ast trees.
//
// The parser supports the constructs required by the corpus and the paper's
// core language (Fig. 2) plus the surrounding real-language features:
// functions in all three syntactic forms, closures, objects with computed
// keys and accessors, arrays, dynamic and static property accesses, new,
// this, full statement forms, template literals, regex literals, spread in
// calls and arrays, and automatic semicolon insertion.
package parser

import (
	"fmt"
	"strings"

	"repro/internal/ast"
	"repro/internal/lexer"
	"repro/internal/loc"
)

// Error is a parse error at a specific source location.
type Error struct {
	Loc loc.Loc
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Loc, e.Msg) }

// Parse parses the source text of one module.
func Parse(file, src string) (prog *ast.Program, err error) {
	toks, err := lexer.New(file, src).All()
	if err != nil {
		return nil, err
	}
	p := &parser{file: file, toks: toks}
	prog = &ast.Program{File: file}
	defer p.catchBailout(&err)
	for !p.at(lexer.EOF) {
		prog.Body = append(prog.Body, p.statement())
	}
	p.applyESMLiveBindings(prog)
	return prog, err
}

// ParseExpr parses a single expression (used by eval-style entry points and
// tests). The expression must consume the entire input.
func ParseExpr(file, src string) (e ast.Expr, err error) {
	toks, lerr := lexer.New(file, src).All()
	if lerr != nil {
		return nil, lerr
	}
	p := &parser{file: file, toks: toks}
	defer p.catchBailout(&err)
	e = p.expression()
	if !p.at(lexer.EOF) {
		return nil, &Error{p.peek().Loc, "unexpected trailing input"}
	}
	return e, err
}

type parser struct {
	file string
	toks []lexer.Token
	pos  int

	// ESM live-binding records, filled by importStmt/exportStmt and applied
	// as a whole-module rewrite after parsing (see esmodules.go).
	esmImports []*esmImport
	esmExports []*esmExport
}

// bailout carries a parse error up through the recursive descent.
type bailout struct{ err *Error }

func (p *parser) catchBailout(err *error) {
	if r := recover(); r != nil {
		if b, ok := r.(bailout); ok {
			*err = b.err
			return
		}
		// A non-bailout panic is a parser bug (index out of range, nil
		// dereference, …). Parse is a total function over arbitrary input —
		// corrupt files must degrade one module, never crash the run — so
		// the bug surfaces as a parse error carrying the file and the
		// position the parser had reached, instead of unwinding further.
		l := loc.Loc{File: p.file, Line: 1, Col: 1}
		if p.pos < len(p.toks) {
			l = p.toks[p.pos].Loc
		} else if len(p.toks) > 0 {
			l = p.toks[len(p.toks)-1].Loc
		}
		*err = &Error{l, fmt.Sprintf("internal parser panic: %v", r)}
	}
}

func (p *parser) fail(l loc.Loc, format string, args ...any) {
	panic(bailout{&Error{l, fmt.Sprintf(format, args...)}})
}

func (p *parser) peek() lexer.Token { return p.toks[p.pos] }

func (p *parser) peekAt(off int) lexer.Token {
	if p.pos+off >= len(p.toks) {
		return p.toks[len(p.toks)-1] // EOF
	}
	return p.toks[p.pos+off]
}

func (p *parser) next() lexer.Token {
	t := p.toks[p.pos]
	if t.Kind != lexer.EOF {
		p.pos++
	}
	return t
}

func (p *parser) at(k lexer.Kind) bool { return p.peek().Kind == k }

func (p *parser) atPunct(text string) bool {
	t := p.peek()
	return t.Kind == lexer.Punct && t.Text == text
}

func (p *parser) atKeyword(text string) bool {
	t := p.peek()
	return t.Kind == lexer.Keyword && t.Text == text
}

func (p *parser) eatPunct(text string) bool {
	if p.atPunct(text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) eatKeyword(text string) bool {
	if p.atKeyword(text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectPunct(text string) lexer.Token {
	if !p.atPunct(text) {
		t := p.peek()
		p.fail(t.Loc, "expected %q but found %s", text, t)
	}
	return p.next()
}

func (p *parser) expectKeyword(text string) lexer.Token {
	if !p.atKeyword(text) {
		t := p.peek()
		p.fail(t.Loc, "expected keyword %q but found %s", text, t)
	}
	return p.next()
}

// identName consumes an identifier (allowing contextual keywords) and
// returns its name.
func (p *parser) identName() (string, loc.Loc) {
	t := p.peek()
	if t.Kind == lexer.Ident || (t.Kind == lexer.Keyword && lexer.IsContextualKeyword(t.Text)) {
		p.pos++
		return t.Text, t.Loc
	}
	p.fail(t.Loc, "expected identifier but found %s", t)
	return "", loc.Loc{}
}

// expectSemi implements automatic semicolon insertion: a statement ends at
// an explicit semicolon, before '}', at EOF, or at a line break.
func (p *parser) expectSemi() {
	if p.eatPunct(";") {
		return
	}
	t := p.peek()
	if t.Kind == lexer.EOF || (t.Kind == lexer.Punct && t.Text == "}") || t.NewlineBefore {
		return
	}
	p.fail(t.Loc, "expected ';' but found %s", t)
}

// ---------------------------------------------------------------- statements

func (p *parser) statement() ast.Stmt {
	if st, ok := p.tryModuleStmt(); ok {
		return st
	}
	t := p.peek()
	switch {
	case t.Kind == lexer.Punct && t.Text == "{":
		return p.blockStmt()
	case t.Kind == lexer.Punct && t.Text == ";":
		p.next()
		return &ast.EmptyStmt{Loc: t.Loc}
	case t.Kind == lexer.Keyword:
		switch t.Text {
		case "var", "const":
			return p.varDecl()
		case "let":
			// "let" is contextual: `let x = …` is a declaration, anything
			// else treats it as an identifier expression.
			if n := p.peekAt(1); n.Kind == lexer.Ident || (n.Kind == lexer.Keyword && lexer.IsContextualKeyword(n.Text)) {
				return p.varDecl()
			}
		case "function":
			return p.funcDeclStmt()
		case "async":
			if n := p.peekAt(1); n.Kind == lexer.Keyword && n.Text == "function" && !n.NewlineBefore {
				p.next() // consume async
				fn := p.funcLit(true)
				fn.IsAsync = true
				return &ast.FuncDecl{Fn: fn}
			}
		case "if":
			return p.ifStmt()
		case "while":
			return p.whileStmt()
		case "do":
			return p.doWhileStmt()
		case "for":
			return p.forStmt()
		case "return":
			return p.returnStmt()
		case "break":
			p.next()
			p.expectSemi()
			return &ast.BreakStmt{Loc: t.Loc}
		case "continue":
			p.next()
			p.expectSemi()
			return &ast.ContinueStmt{Loc: t.Loc}
		case "throw":
			return p.throwStmt()
		case "try":
			return p.tryStmt()
		case "switch":
			return p.switchStmt()
		case "class":
			// Class declarations desugar to `var Name = (function(){…})()`.
			expr, name := p.classExpr()
			if name == "" {
				p.fail(t.Loc, "class declaration requires a name")
			}
			p.expectSemi()
			return &ast.VarDecl{
				Kind:  ast.Var,
				Decls: []*ast.Declarator{{Name: name, Init: expr, Loc: t.Loc}},
				Loc:   t.Loc,
			}
		}
	}
	x := p.expression()
	p.expectSemi()
	return &ast.ExprStmt{X: x}
}

func (p *parser) blockStmt() *ast.BlockStmt {
	open := p.expectPunct("{")
	b := &ast.BlockStmt{Loc: open.Loc}
	for !p.atPunct("}") && !p.at(lexer.EOF) {
		b.Body = append(b.Body, p.statement())
	}
	p.expectPunct("}")
	return b
}

func (p *parser) varDecl() *ast.VarDecl {
	kw := p.next()
	d := &ast.VarDecl{Kind: ast.VarKind(kw.Text), Loc: kw.Loc}
	for {
		name, nloc := p.identName()
		decl := &ast.Declarator{Name: name, Loc: nloc}
		if p.eatPunct("=") {
			decl.Init = p.assignExpr()
		}
		d.Decls = append(d.Decls, decl)
		if !p.eatPunct(",") {
			break
		}
	}
	p.expectSemi()
	return d
}

func (p *parser) funcDeclStmt() ast.Stmt {
	fn := p.funcLit(true)
	return &ast.FuncDecl{Fn: fn}
}

// funcLit parses a function keyword definition. requireName is true for
// declarations.
func (p *parser) funcLit(requireName bool) *ast.FuncLit {
	kw := p.expectKeyword("function")
	f := &ast.FuncLit{Loc: kw.Loc, RestIdx: -1}
	if p.eatPunct("*") {
		f.IsGenerator = true
	}
	if p.at(lexer.Ident) || (p.at(lexer.Keyword) && lexer.IsContextualKeyword(p.peek().Text)) {
		f.Name, _ = p.identName()
	} else if requireName {
		p.fail(p.peek().Loc, "function declaration requires a name")
	}
	p.parseParams(f)
	f.Body = p.blockStmt()
	return f
}

func (p *parser) parseParams(f *ast.FuncLit) {
	p.expectPunct("(")
	for !p.atPunct(")") {
		if p.eatPunct("...") {
			f.RestIdx = len(f.Params)
		}
		name, _ := p.identName()
		f.Params = append(f.Params, name)
		if f.RestIdx >= 0 && f.RestIdx == len(f.Params)-1 {
			break // rest parameter must be last
		}
		if !p.eatPunct(",") {
			break
		}
	}
	p.expectPunct(")")
}

func (p *parser) ifStmt() ast.Stmt {
	kw := p.expectKeyword("if")
	p.expectPunct("(")
	cond := p.expression()
	p.expectPunct(")")
	then := p.statement()
	var els ast.Stmt
	if p.eatKeyword("else") {
		els = p.statement()
	}
	return &ast.IfStmt{Cond: cond, Then: then, Else: els, Loc: kw.Loc}
}

func (p *parser) whileStmt() ast.Stmt {
	kw := p.expectKeyword("while")
	p.expectPunct("(")
	cond := p.expression()
	p.expectPunct(")")
	return &ast.WhileStmt{Cond: cond, Body: p.statement(), Loc: kw.Loc}
}

func (p *parser) doWhileStmt() ast.Stmt {
	kw := p.expectKeyword("do")
	body := p.statement()
	p.expectKeyword("while")
	p.expectPunct("(")
	cond := p.expression()
	p.expectPunct(")")
	p.expectSemi()
	return &ast.DoWhileStmt{Body: body, Cond: cond, Loc: kw.Loc}
}

func (p *parser) forStmt() ast.Stmt {
	kw := p.expectKeyword("for")
	p.expectPunct("(")

	// for (var x in e) / for (var x of e) / for (x in e) / for (x of e)
	if st, ok := p.tryForIn(kw.Loc); ok {
		return st
	}

	var init ast.Stmt
	if !p.atPunct(";") {
		if p.atKeyword("var") || p.atKeyword("let") || p.atKeyword("const") {
			kind := ast.VarKind(p.next().Text)
			d := &ast.VarDecl{Kind: kind, Loc: kw.Loc}
			for {
				name, nloc := p.identName()
				decl := &ast.Declarator{Name: name, Loc: nloc}
				if p.eatPunct("=") {
					decl.Init = p.assignExpr()
				}
				d.Decls = append(d.Decls, decl)
				if !p.eatPunct(",") {
					break
				}
			}
			init = d
		} else {
			init = &ast.ExprStmt{X: p.expression()}
		}
	}
	p.expectPunct(";")
	var cond ast.Expr
	if !p.atPunct(";") {
		cond = p.expression()
	}
	p.expectPunct(";")
	var post ast.Expr
	if !p.atPunct(")") {
		post = p.expression()
	}
	p.expectPunct(")")
	return &ast.ForStmt{Init: init, Cond: cond, Post: post, Body: p.statement(), Loc: kw.Loc}
}

// tryForIn recognizes for-in and for-of headers by lookahead from the token
// after "for (". It consumes nothing unless it matches.
func (p *parser) tryForIn(at loc.Loc) (ast.Stmt, bool) {
	save := p.pos
	var kind ast.VarKind
	if p.atKeyword("var") || p.atKeyword("let") || p.atKeyword("const") {
		kind = ast.VarKind(p.next().Text)
	}
	t := p.peek()
	isIdent := t.Kind == lexer.Ident || (t.Kind == lexer.Keyword && lexer.IsContextualKeyword(t.Text))
	if !isIdent {
		p.pos = save
		return nil, false
	}
	nxt := p.peekAt(1)
	isIn := nxt.Kind == lexer.Keyword && nxt.Text == "in"
	isOf := nxt.Kind == lexer.Keyword && nxt.Text == "of"
	if !isIn && !isOf {
		p.pos = save
		return nil, false
	}
	name, _ := p.identName()
	p.next() // in/of
	obj := p.expression()
	p.expectPunct(")")
	return &ast.ForInStmt{DeclKind: kind, Name: name, Obj: obj, Body: p.statement(), IsOf: isOf, Loc: at}, true
}

func (p *parser) returnStmt() ast.Stmt {
	kw := p.expectKeyword("return")
	st := &ast.ReturnStmt{Loc: kw.Loc}
	t := p.peek()
	if !t.NewlineBefore && !p.atPunct(";") && !p.atPunct("}") && t.Kind != lexer.EOF {
		st.X = p.expression()
	}
	p.expectSemi()
	return st
}

func (p *parser) throwStmt() ast.Stmt {
	kw := p.expectKeyword("throw")
	if p.peek().NewlineBefore {
		p.fail(kw.Loc, "newline not allowed after throw")
	}
	x := p.expression()
	p.expectSemi()
	return &ast.ThrowStmt{X: x, Loc: kw.Loc}
}

func (p *parser) tryStmt() ast.Stmt {
	kw := p.expectKeyword("try")
	st := &ast.TryStmt{Loc: kw.Loc, Block: p.blockStmt()}
	if p.eatKeyword("catch") {
		if p.eatPunct("(") {
			st.CatchParam, _ = p.identName()
			p.expectPunct(")")
		}
		st.Catch = p.blockStmt()
	}
	if p.eatKeyword("finally") {
		st.Finally = p.blockStmt()
	}
	if st.Catch == nil && st.Finally == nil {
		p.fail(kw.Loc, "try requires catch or finally")
	}
	return st
}

func (p *parser) switchStmt() ast.Stmt {
	kw := p.expectKeyword("switch")
	p.expectPunct("(")
	disc := p.expression()
	p.expectPunct(")")
	p.expectPunct("{")
	st := &ast.SwitchStmt{Disc: disc, Loc: kw.Loc}
	sawDefault := false
	for !p.atPunct("}") && !p.at(lexer.EOF) {
		c := &ast.SwitchCase{Loc: p.peek().Loc}
		if p.eatKeyword("default") {
			if sawDefault {
				p.fail(c.Loc, "duplicate default case")
			}
			sawDefault = true
		} else {
			p.expectKeyword("case")
			c.Test = p.expression()
		}
		p.expectPunct(":")
		for !p.atPunct("}") && !p.atKeyword("case") && !p.atKeyword("default") && !p.at(lexer.EOF) {
			c.Body = append(c.Body, p.statement())
		}
		st.Cases = append(st.Cases, c)
	}
	p.expectPunct("}")
	return st
}

// --------------------------------------------------------------- expressions

// expression parses a comma-separated expression sequence.
func (p *parser) expression() ast.Expr {
	first := p.assignExpr()
	if !p.atPunct(",") {
		return first
	}
	seq := &ast.SeqExpr{Exprs: []ast.Expr{first}, Loc: first.Pos()}
	for p.eatPunct(",") {
		seq.Exprs = append(seq.Exprs, p.assignExpr())
	}
	return seq
}

var assignOps = map[string]bool{
	"=": true, "+=": true, "-=": true, "*=": true, "/=": true, "%=": true,
	"&=": true, "|=": true, "^=": true, "<<=": true, ">>=": true, ">>>=": true,
	"**=": true,
}

func (p *parser) assignExpr() ast.Expr {
	if p.atKeyword("yield") {
		return p.yieldExpr()
	}
	if arrow, ok := p.tryArrow(); ok {
		return arrow
	}
	lhs := p.condExpr()
	t := p.peek()
	if t.Kind == lexer.Punct && assignOps[t.Text] {
		switch lhs.(type) {
		case *ast.Ident, *ast.MemberExpr:
		default:
			p.fail(t.Loc, "invalid assignment target")
		}
		p.next()
		rhs := p.assignExpr()
		return &ast.AssignExpr{Op: t.Text, Target: lhs, Value: rhs, Loc: t.Loc}
	}
	return lhs
}

// yieldExpr parses yield / yield E / yield* E. Like await, yield is
// accepted wherever an assignment expression may appear (a simplification:
// outside generator bodies it evaluates leniently instead of being a syntax
// error). A bare yield ends at a newline or at a token that cannot begin an
// expression.
func (p *parser) yieldExpr() ast.Expr {
	kw := p.expectKeyword("yield")
	y := &ast.YieldExpr{Loc: kw.Loc}
	if p.eatPunct("*") {
		y.X = p.assignExpr()
		y.Delegate = true
		return y
	}
	t := p.peek()
	if t.NewlineBefore || t.Kind == lexer.EOF {
		return y
	}
	if t.Kind == lexer.Punct {
		switch t.Text {
		case ")", "]", "}", ",", ";", ":":
			return y
		}
	}
	y.X = p.assignExpr()
	return y
}

// tryArrow recognizes arrow functions by lookahead: IDENT "=>", or a
// parenthesized parameter list followed by "=>". It consumes nothing unless
// it matches.
func (p *parser) tryArrow() (ast.Expr, bool) {
	t := p.peek()
	// async arrow functions: "async x => …" or "async (…) => …".
	if t.Kind == lexer.Keyword && t.Text == "async" {
		n := p.peekAt(1)
		isArrowHead := (n.Kind == lexer.Ident && p.peekAt(2).Kind == lexer.Punct && p.peekAt(2).Text == "=>") ||
			(n.Kind == lexer.Punct && n.Text == "(")
		if isArrowHead && !n.NewlineBefore {
			save := p.pos
			p.next() // consume async
			if arrow, ok := p.tryArrow(); ok {
				arrow.(*ast.FuncLit).IsAsync = true
				return arrow, true
			}
			p.pos = save
		}
	}
	// ident => …
	if (t.Kind == lexer.Ident || (t.Kind == lexer.Keyword && lexer.IsContextualKeyword(t.Text))) &&
		p.peekAt(1).Kind == lexer.Punct && p.peekAt(1).Text == "=>" {
		name, nloc := p.identName()
		p.expectPunct("=>")
		f := &ast.FuncLit{IsArrow: true, Params: []string{name}, RestIdx: -1, Loc: nloc}
		p.arrowBody(f)
		return f, true
	}
	if !(t.Kind == lexer.Punct && t.Text == "(") {
		return nil, false
	}
	// Scan to the matching ')' and check for '=>'.
	depth := 0
	i := p.pos
	for ; i < len(p.toks); i++ {
		tk := p.toks[i]
		if tk.Kind != lexer.Punct {
			continue
		}
		switch tk.Text {
		case "(", "[", "{":
			depth++
		case ")", "]", "}":
			depth--
			if depth == 0 {
				goto scanned
			}
		}
	}
	return nil, false
scanned:
	if i+1 >= len(p.toks) {
		return nil, false
	}
	if n := p.toks[i+1]; !(n.Kind == lexer.Punct && n.Text == "=>") {
		return nil, false
	}
	f := &ast.FuncLit{IsArrow: true, RestIdx: -1, Loc: t.Loc}
	p.parseParams(f)
	p.expectPunct("=>")
	p.arrowBody(f)
	return f, true
}

func (p *parser) arrowBody(f *ast.FuncLit) {
	if p.atPunct("{") {
		f.Body = p.blockStmt()
		return
	}
	f.ExprBody = p.assignExpr()
}

func (p *parser) condExpr() ast.Expr {
	cond := p.binaryExpr(0)
	if !p.atPunct("?") {
		return cond
	}
	q := p.next()
	then := p.assignExpr()
	p.expectPunct(":")
	els := p.assignExpr()
	return &ast.CondExpr{Cond: cond, Then: then, Else: els, Loc: q.Loc}
}

// binary operator precedence levels; higher binds tighter.
var binPrec = map[string]int{
	"??": 1,
	"||": 2,
	"&&": 3,
	"|":  4,
	"^":  5,
	"&":  6,
	"==": 7, "!=": 7, "===": 7, "!==": 7,
	"<": 8, ">": 8, "<=": 8, ">=": 8, "in": 8, "instanceof": 8,
	"<<": 9, ">>": 9, ">>>": 9,
	"+": 10, "-": 10,
	"*": 11, "/": 11, "%": 11,
	"**": 12,
}

func (p *parser) binaryExpr(minPrec int) ast.Expr {
	left := p.unaryExpr()
	for {
		t := p.peek()
		var op string
		switch {
		case t.Kind == lexer.Punct && binPrec[t.Text] > 0:
			op = t.Text
		case t.Kind == lexer.Keyword && (t.Text == "in" || t.Text == "instanceof"):
			op = t.Text
		default:
			return left
		}
		prec := binPrec[op]
		if prec <= minPrec {
			return left
		}
		p.next()
		// ** is right-associative; everything else left-associative.
		nextMin := prec
		if op == "**" {
			nextMin = prec - 1
		}
		right := p.binaryExpr(nextMin)
		if op == "&&" || op == "||" || op == "??" {
			left = &ast.LogicalExpr{Op: op, L: left, R: right, Loc: t.Loc}
		} else {
			left = &ast.BinaryExpr{Op: op, L: left, R: right, Loc: t.Loc}
		}
	}
}

func (p *parser) unaryExpr() ast.Expr {
	t := p.peek()
	if t.Kind == lexer.Punct {
		switch t.Text {
		case "!", "~", "+", "-":
			p.next()
			return &ast.UnaryExpr{Op: t.Text, X: p.unaryExpr(), Loc: t.Loc}
		case "++", "--":
			p.next()
			x := p.unaryExpr()
			return &ast.UpdateExpr{Op: t.Text, X: x, Prefix: true, Loc: t.Loc}
		}
	}
	if t.Kind == lexer.Keyword {
		switch t.Text {
		case "typeof", "void", "delete":
			p.next()
			return &ast.UnaryExpr{Op: t.Text, X: p.unaryExpr(), Loc: t.Loc}
		case "await":
			// await is treated as a unary operator wherever it appears (a
			// simplification: top-level await is legal here too).
			p.next()
			return &ast.UnaryExpr{Op: "await", X: p.unaryExpr(), Loc: t.Loc}
		}
	}
	return p.postfixExpr()
}

func (p *parser) postfixExpr() ast.Expr {
	x := p.callExpr()
	t := p.peek()
	if t.Kind == lexer.Punct && (t.Text == "++" || t.Text == "--") && !t.NewlineBefore {
		p.next()
		return &ast.UpdateExpr{Op: t.Text, X: x, Prefix: false, Loc: t.Loc}
	}
	return x
}

// callExpr parses member/call chains.
func (p *parser) callExpr() ast.Expr {
	var x ast.Expr
	if p.atKeyword("new") {
		x = p.newExpr()
	} else {
		x = p.primaryExpr()
	}
	return p.callTail(x)
}

func (p *parser) callTail(x ast.Expr) ast.Expr {
	for {
		t := p.peek()
		if t.Kind != lexer.Punct {
			return x
		}
		switch t.Text {
		case ".":
			p.next()
			name := p.propertyName()
			x = &ast.MemberExpr{Obj: x, Prop: name, Loc: t.Loc}
		case "[":
			p.next()
			idx := p.expression()
			p.expectPunct("]")
			x = &ast.MemberExpr{Obj: x, PropExpr: idx, Computed: true, Loc: t.Loc}
		case "(":
			args := p.arguments()
			x = &ast.CallExpr{Callee: x, Args: args, Loc: t.Loc}
		default:
			return x
		}
	}
}

// propertyName consumes a property name after '.', allowing any keyword
// (obj.delete, obj.in are legal in modern JS).
func (p *parser) propertyName() string {
	t := p.peek()
	if t.Kind == lexer.Ident || t.Kind == lexer.Keyword {
		p.next()
		return t.Text
	}
	p.fail(t.Loc, "expected property name but found %s", t)
	return ""
}

func (p *parser) arguments() []ast.Expr {
	p.expectPunct("(")
	var args []ast.Expr
	for !p.atPunct(")") {
		if p.atPunct("...") {
			s := p.next()
			args = append(args, &ast.SpreadExpr{X: p.assignExpr(), Loc: s.Loc})
		} else {
			args = append(args, p.assignExpr())
		}
		if !p.eatPunct(",") {
			break
		}
	}
	p.expectPunct(")")
	return args
}

func (p *parser) newExpr() ast.Expr {
	kw := p.expectKeyword("new")
	// Parse the constructor as a member chain without call expressions so
	// that `new a.b.C(x)` binds the arguments to the new-expression.
	var callee ast.Expr
	if p.atKeyword("new") {
		callee = p.newExpr()
	} else {
		callee = p.primaryExpr()
	}
	for {
		t := p.peek()
		if t.Kind != lexer.Punct {
			break
		}
		if t.Text == "." {
			p.next()
			callee = &ast.MemberExpr{Obj: callee, Prop: p.propertyName(), Loc: t.Loc}
		} else if t.Text == "[" {
			p.next()
			idx := p.expression()
			p.expectPunct("]")
			callee = &ast.MemberExpr{Obj: callee, PropExpr: idx, Computed: true, Loc: t.Loc}
		} else {
			break
		}
	}
	var args []ast.Expr
	if p.atPunct("(") {
		args = p.arguments()
	}
	return &ast.NewExpr{Callee: callee, Args: args, Loc: kw.Loc}
}

func (p *parser) primaryExpr() ast.Expr {
	t := p.peek()
	switch t.Kind {
	case lexer.Number:
		p.next()
		return &ast.NumberLit{Value: t.Num, Raw: t.Text, Loc: t.Loc}
	case lexer.String:
		p.next()
		return &ast.StringLit{Value: t.Str, Loc: t.Loc}
	case lexer.Template:
		p.next()
		return p.templateLit(t)
	case lexer.Regex:
		p.next()
		return &ast.RegexLit{Pattern: t.Str, Flags: t.Flags, Loc: t.Loc}
	case lexer.Ident:
		p.next()
		return &ast.Ident{Name: t.Text, Loc: t.Loc}
	case lexer.Keyword:
		switch t.Text {
		case "this":
			p.next()
			return &ast.ThisExpr{Loc: t.Loc}
		case "true", "false":
			p.next()
			return &ast.BoolLit{Value: t.Text == "true", Loc: t.Loc}
		case "null":
			p.next()
			return &ast.NullLit{Loc: t.Loc}
		case "undefined":
			p.next()
			return &ast.UndefinedLit{Loc: t.Loc}
		case "function":
			return p.funcLit(false)
		case "class":
			expr, _ := p.classExpr()
			return expr
		case "async":
			if n := p.peekAt(1); n.Kind == lexer.Keyword && n.Text == "function" && !n.NewlineBefore {
				p.next()
				fn := p.funcLit(false)
				fn.IsAsync = true
				return fn
			}
			// Plain identifier use of the contextual keyword.
			p.next()
			return &ast.Ident{Name: t.Text, Loc: t.Loc}
		default:
			if lexer.IsContextualKeyword(t.Text) {
				p.next()
				return &ast.Ident{Name: t.Text, Loc: t.Loc}
			}
		}
	case lexer.Punct:
		switch t.Text {
		case "(":
			p.next()
			x := p.expression()
			p.expectPunct(")")
			return x
		case "[":
			return p.arrayLit()
		case "{":
			return p.objectLit()
		}
	}
	p.fail(t.Loc, "unexpected token %s", t)
	return nil
}

func (p *parser) arrayLit() ast.Expr {
	open := p.expectPunct("[")
	lit := &ast.ArrayLit{Loc: open.Loc}
	for !p.atPunct("]") {
		if p.atPunct(",") {
			p.next()
			lit.Elems = append(lit.Elems, nil) // hole
			continue
		}
		if p.atPunct("...") {
			s := p.next()
			lit.Elems = append(lit.Elems, &ast.SpreadExpr{X: p.assignExpr(), Loc: s.Loc})
		} else {
			lit.Elems = append(lit.Elems, p.assignExpr())
		}
		if !p.eatPunct(",") {
			break
		}
	}
	p.expectPunct("]")
	return lit
}

func (p *parser) objectLit() ast.Expr {
	open := p.expectPunct("{")
	lit := &ast.ObjectLit{Loc: open.Loc}
	for !p.atPunct("}") {
		lit.Props = append(lit.Props, p.objectProp())
		if !p.eatPunct(",") {
			break
		}
	}
	p.expectPunct("}")
	return lit
}

func (p *parser) objectProp() *ast.Property {
	t := p.peek()
	prop := &ast.Property{Loc: t.Loc}

	// get/set accessor: "get" or "set" followed by a key (not ':'/'('/',').
	if t.Kind == lexer.Keyword && (t.Text == "get" || t.Text == "set") {
		n := p.peekAt(1)
		isAccessor := n.Kind == lexer.Ident || n.Kind == lexer.String ||
			n.Kind == lexer.Number || (n.Kind == lexer.Punct && n.Text == "[") ||
			(n.Kind == lexer.Keyword && n.Text != "in" && n.Text != "instanceof")
		if isAccessor {
			p.next()
			if t.Text == "get" {
				prop.Kind = ast.GetterProp
			} else {
				prop.Kind = ast.SetterProp
			}
			p.propKey(prop)
			f := &ast.FuncLit{Loc: p.peek().Loc, RestIdx: -1}
			p.parseParams(f)
			f.Body = p.blockStmt()
			prop.Value = f
			return prop
		}
	}

	p.propKey(prop)

	switch {
	case p.atPunct(":"):
		p.next()
		prop.Value = p.assignExpr()
	case p.atPunct("("):
		// method shorthand: key(params) { body }
		f := &ast.FuncLit{Name: prop.Key, Loc: prop.Loc, RestIdx: -1}
		p.parseParams(f)
		f.Body = p.blockStmt()
		prop.Value = f
	default:
		// shorthand { key }
		if prop.Computed != nil {
			p.fail(prop.Loc, "computed key requires a value")
		}
		prop.Value = &ast.Ident{Name: prop.Key, Loc: prop.Loc}
	}
	return prop
}

func (p *parser) propKey(prop *ast.Property) {
	t := p.peek()
	switch {
	case t.Kind == lexer.Ident || t.Kind == lexer.Keyword:
		p.next()
		prop.Key = t.Text
	case t.Kind == lexer.String:
		p.next()
		prop.Key = t.Str
	case t.Kind == lexer.Number:
		p.next()
		prop.Key = trimFloat(t.Num)
	case t.Kind == lexer.Punct && t.Text == "[":
		p.next()
		prop.Computed = p.assignExpr()
		p.expectPunct("]")
	default:
		p.fail(t.Loc, "expected property key but found %s", t)
	}
}

// templateLit splits a raw template body into quasis and interpolated
// expressions and sub-parses the expressions with location-corrected
// lexers so allocation sites inside interpolations remain meaningful.
func (p *parser) templateLit(t lexer.Token) ast.Expr {
	lit := &ast.TemplateLit{Loc: t.Loc}
	raw := t.Str
	// Content begins one column after the backtick.
	line, col := t.Loc.Line, t.Loc.Col+1
	var quasi strings.Builder
	i := 0
	bump := func(c byte) {
		if c == '\n' {
			line++
			col = 1
		} else {
			col++
		}
	}
	for i < len(raw) {
		c := raw[i]
		if c == '\\' && i+1 < len(raw) {
			switch raw[i+1] {
			case 'n':
				quasi.WriteByte('\n')
			case 't':
				quasi.WriteByte('\t')
			case 'r':
				quasi.WriteByte('\r')
			case '`':
				quasi.WriteByte('`')
			case '$':
				quasi.WriteByte('$')
			case '\\':
				quasi.WriteByte('\\')
			default:
				quasi.WriteByte(raw[i+1])
			}
			bump(raw[i])
			bump(raw[i+1])
			i += 2
			continue
		}
		if c == '$' && i+1 < len(raw) && raw[i+1] == '{' {
			lit.Quasis = append(lit.Quasis, quasi.String())
			quasi.Reset()
			bump('$')
			bump('{')
			i += 2
			// find matching close brace
			depth := 1
			start := i
			startLine, startCol := line, col
			for i < len(raw) && depth > 0 {
				switch raw[i] {
				case '{':
					depth++
				case '}':
					depth--
					if depth == 0 {
						goto closed
					}
				}
				bump(raw[i])
				i++
			}
			p.fail(t.Loc, "unterminated template interpolation")
		closed:
			sub := raw[start:i]
			expr, err := parseSubExpr(p.file, sub, startLine, startCol)
			if err != nil {
				panic(bailout{&Error{t.Loc, "in template interpolation: " + err.Error()}})
			}
			lit.Exprs = append(lit.Exprs, expr)
			bump('}')
			i++
			continue
		}
		quasi.WriteByte(c)
		bump(c)
		i++
	}
	lit.Quasis = append(lit.Quasis, quasi.String())
	return lit
}

// parseSubExpr parses an expression embedded at a known position within a
// file by padding the source so the lexer reports correct locations.
func parseSubExpr(file, src string, line, col int) (ast.Expr, error) {
	pad := strings.Repeat("\n", line-1) + strings.Repeat(" ", col-1)
	return ParseExpr(file, pad+src)
}

func trimFloat(f float64) string {
	s := fmt.Sprintf("%g", f)
	return s
}
