package parser

import (
	"strconv"

	"repro/internal/ast"
	"repro/internal/lexer"
	"repro/internal/loc"
)

// ES-module support. The paper notes the approach "also works for ES
// modules"; this front end desugars ESM syntax to the CommonJS constructs
// the module system executes, so imports resolve through the same require
// machinery (and dynamic-import-style hints behave identically):
//
//	import def from 'm';              var def = require('m').default !== undefined
//	                                      ? require('m').default : require('m');
//	import {a, b as c} from 'm';      var __esm0 = require('m');   (a → __esm0.a,
//	                                      c → __esm0.b at every use site)
//	import * as ns from 'm';          var ns = require('m');
//	import 'm';                       require('m');
//	export function f() {}            function f() {} exports.f = f;
//	export var x = 1;                 exports.x = 1;   (x → exports.x at every
//	                                      use site in the module)
//	export default expr;              exports["default"] = expr;
//	export {a, b as c};               Object.defineProperty(exports, "a",
//	                                      {get: function () { return a; }}); …
//
// ESM bindings are *live*: a module mutating an exported variable after an
// importer has imported it must be visible through the import. A plain
// `var a = require('m').a` copy breaks that, so named imports and exported
// vars are rewritten at every use site to reads/writes through the module
// object, and export lists become defineProperty getters closing over the
// local binding. The rewrite (applyESMLiveBindings) runs after the whole
// module is parsed; a binding that is shadowed or redeclared anywhere in the
// module conservatively keeps the old snapshot desugaring, since use-site
// rewriting would then need full scope analysis to stay correct.
//
// Since "import" and "export" are not reserved words in this lexer, they
// arrive as identifiers; the statement parser intercepts them in statement
// position when the following tokens match module syntax.

// tryModuleStmt recognizes import/export statements. It consumes nothing
// unless the statement-position identifier is followed by module syntax.
func (p *parser) tryModuleStmt() (ast.Stmt, bool) {
	t := p.peek()
	if t.Kind != lexer.Ident {
		return nil, false
	}
	switch t.Text {
	case "import":
		n := p.peekAt(1)
		ok := n.Kind == lexer.String || // import 'm';
			n.Kind == lexer.Ident || // import def from 'm';
			(n.Kind == lexer.Punct && (n.Text == "{" || n.Text == "*"))
		if !ok {
			return nil, false
		}
		return p.importStmt(), true
	case "export":
		n := p.peekAt(1)
		ok := (n.Kind == lexer.Keyword && (n.Text == "function" || n.Text == "var" ||
			n.Text == "let" || n.Text == "const" || n.Text == "class" || n.Text == "async" ||
			n.Text == "default")) ||
			(n.Kind == lexer.Ident && n.Text == "default") ||
			(n.Kind == lexer.Punct && n.Text == "{")
		if !ok {
			return nil, false
		}
		return p.exportStmt(), true
	}
	return nil, false
}

// requireCallExpr builds require('name') at the given location.
func requireCallExpr(at loc.Loc, name string) *ast.CallExpr {
	return &ast.CallExpr{
		Callee: &ast.Ident{Name: "require", Loc: at},
		Args:   []ast.Expr{&ast.StringLit{Value: name, Loc: at}},
		Loc:    at,
	}
}

func (p *parser) importStmt() ast.Stmt {
	kw := p.next() // consume "import"
	at := kw.Loc

	// import 'm';
	if p.at(lexer.String) {
		mod := p.next().Str
		p.expectSemi()
		return &ast.ExprStmt{X: requireCallExpr(at, mod)}
	}

	type binding struct {
		local    string
		imported string // "" = whole namespace, "default" = default export
	}
	var bindings []binding

	parseNamed := func() {
		p.expectPunct("{")
		for !p.atPunct("}") && !p.at(lexer.EOF) {
			imported, _ := p.identName()
			local := imported
			if p.at(lexer.Ident) && p.peek().Text == "as" {
				p.next()
				local, _ = p.identName()
			}
			bindings = append(bindings, binding{local: local, imported: imported})
			if !p.eatPunct(",") {
				break
			}
		}
		p.expectPunct("}")
	}

	switch {
	case p.atPunct("{"):
		parseNamed()
	case p.atPunct("*"):
		p.next()
		if !(p.at(lexer.Ident) && p.peek().Text == "as") {
			p.fail(p.peek().Loc, "expected 'as' after import *")
		}
		p.next()
		local, _ := p.identName()
		bindings = append(bindings, binding{local: local})
	default:
		// default import, optionally followed by named imports.
		local, _ := p.identName()
		bindings = append(bindings, binding{local: local, imported: "default"})
		if p.eatPunct(",") {
			if p.atPunct("{") {
				parseNamed()
			} else if p.atPunct("*") {
				p.next()
				p.next() // as
				ns, _ := p.identName()
				bindings = append(bindings, binding{local: ns})
			}
		}
	}

	if !(p.at(lexer.Ident) && p.peek().Text == "from") {
		p.fail(p.peek().Loc, "expected 'from' in import statement")
	}
	p.next()
	if !p.at(lexer.String) {
		p.fail(p.peek().Loc, "expected module specifier string")
	}
	mod := p.next().Str
	p.expectSemi()

	decl := &ast.VarDecl{Kind: ast.Var, Loc: at}
	imp := &esmImport{decl: decl}
	for i, b := range bindings {
		var init ast.Expr = requireCallExpr(at, mod)
		switch b.imported {
		case "":
			// namespace import: the whole exports object (already live).
		case "default":
			// CommonJS interop: prefer .default when present, else the
			// exports value itself. Default imports stay snapshots: the
			// interop fallback has no single property to read through.
			withDefault := &ast.MemberExpr{Obj: requireCallExpr(at, mod), Prop: "default", Loc: at}
			init = &ast.LogicalExpr{Op: "??", L: withDefault, R: init, Loc: at}
		default:
			init = &ast.MemberExpr{Obj: init, Prop: b.imported, Loc: at}
			imp.bindings = append(imp.bindings, esmImportBinding{local: b.local, prop: b.imported, declIdx: i})
		}
		decl.Decls = append(decl.Decls, &ast.Declarator{Name: b.local, Init: init, Loc: at})
	}
	if len(imp.bindings) > 0 {
		p.esmImports = append(p.esmImports, imp)
	}
	return decl
}

func (p *parser) exportStmt() ast.Stmt {
	kw := p.next() // consume "export"
	at := kw.Loc

	exportAssign := func(name string, v ast.Expr) ast.Stmt {
		return &ast.ExprStmt{X: &ast.AssignExpr{
			Op:     "=",
			Target: &ast.MemberExpr{Obj: &ast.Ident{Name: "exports", Loc: at}, Prop: name, Loc: at},
			Value:  v,
			Loc:    at,
		}}
	}

	// export default expr;
	if (p.at(lexer.Keyword) && p.peek().Text == "default") ||
		(p.at(lexer.Ident) && p.peek().Text == "default") {
		p.next()
		// export default function f() {} keeps the function hoistable-ish;
		// treat uniformly as an expression.
		var v ast.Expr
		if p.atKeyword("function") {
			v = p.funcLit(false)
		} else if p.atKeyword("class") {
			v, _ = p.classExpr()
		} else {
			v = p.assignExpr()
		}
		p.expectSemi()
		return exportAssign("default", v)
	}

	// export {a, b as c}; — re-exports are live: each name becomes a getter
	// on exports that reads the local binding at access time (and, after the
	// live-binding rewrite, reads through an import's module object).
	if p.atPunct("{") {
		p.next()
		block := &ast.BlockStmt{Loc: at}
		for !p.atPunct("}") && !p.at(lexer.EOF) {
			local, lloc := p.identName()
			exported := local
			if p.at(lexer.Ident) && p.peek().Text == "as" {
				p.next()
				exported, _ = p.identName()
			}
			block.Body = append(block.Body, exportGetterStmt(exported, local, lloc))
			if !p.eatPunct(",") {
				break
			}
		}
		p.expectPunct("}")
		p.expectSemi()
		return block
	}

	// export <declaration>
	decl := p.statement()
	block := &ast.BlockStmt{Loc: at, Body: []ast.Stmt{decl}}
	switch d := decl.(type) {
	case *ast.FuncDecl:
		block.Body = append(block.Body, exportAssign(d.Fn.Name, &ast.Ident{Name: d.Fn.Name, Loc: at}))
	case *ast.VarDecl:
		rec := &esmExport{block: block, decl: d}
		for _, dd := range d.Decls {
			rec.names = append(rec.names, dd.Name)
			block.Body = append(block.Body, exportAssign(dd.Name, &ast.Ident{Name: dd.Name, Loc: dd.Loc}))
		}
		p.esmExports = append(p.esmExports, rec)
	default:
		p.fail(at, "unsupported export declaration")
	}
	return block
}

// ----------------------------------------------------- live-binding rewrite

// esmImport records one import statement's named bindings so the post-parse
// pass can upgrade them from snapshots to live reads.
type esmImport struct {
	decl     *ast.VarDecl
	bindings []esmImportBinding
}

type esmImportBinding struct {
	local   string
	prop    string // exported name on the source module
	declIdx int    // index of the snapshot declarator in decl.Decls
}

// esmExport records one `export var/let/const` statement.
type esmExport struct {
	block *ast.BlockStmt
	decl  *ast.VarDecl
	names []string
}

// esmRepl rewrites an identifier to obj.prop.
type esmRepl struct{ obj, prop string }

// exportAssignStmt builds `exports.name = v;`.
func exportAssignStmt(at loc.Loc, name string, v ast.Expr) ast.Stmt {
	return &ast.ExprStmt{X: &ast.AssignExpr{
		Op:     "=",
		Target: &ast.MemberExpr{Obj: &ast.Ident{Name: "exports", Loc: at}, Prop: name, Loc: at},
		Value:  v,
		Loc:    at,
	}}
}

// exportGetterStmt builds
//
//	Object.defineProperty(exports, "name", {get: function () { return local; }});
//
// making the re-export read the current local binding on every access.
func exportGetterStmt(name, local string, at loc.Loc) ast.Stmt {
	getter := &ast.FuncLit{
		RestIdx: -1,
		Body: &ast.BlockStmt{Loc: at, Body: []ast.Stmt{
			&ast.ReturnStmt{X: &ast.Ident{Name: local, Loc: at}, Loc: at},
		}},
		Loc: at,
	}
	desc := &ast.ObjectLit{Loc: at, Props: []*ast.Property{{Key: "get", Value: getter, Loc: at}}}
	return &ast.ExprStmt{X: &ast.CallExpr{
		Callee: &ast.MemberExpr{Obj: &ast.Ident{Name: "Object", Loc: at}, Prop: "defineProperty", Loc: at},
		Args:   []ast.Expr{&ast.Ident{Name: "exports", Loc: at}, &ast.StringLit{Value: name, Loc: at}, desc},
		Loc:    at,
	}}
}

// applyESMLiveBindings upgrades the snapshot desugarings recorded during
// parsing to live bindings. A binding qualifies only when its name is
// declared exactly once in the whole module (its own import/export
// declarator): any other declaration — a parameter, a nested var, a catch
// binding, a for-in target — could shadow it, and use-site rewriting without
// scope analysis would then change meaning. Unqualified bindings keep the
// snapshot desugaring.
func (p *parser) applyESMLiveBindings(prog *ast.Program) {
	if len(p.esmImports) == 0 && len(p.esmExports) == 0 {
		return
	}
	counts := declCounts(prog)
	repl := map[string]esmRepl{}

	tmpN := 0
	freshTmp := func() string {
		for {
			name := "__esm" + strconv.Itoa(tmpN)
			tmpN++
			if counts[name] == 0 {
				counts[name] = 1
				return name
			}
		}
	}

	for _, imp := range p.esmImports {
		var live []esmImportBinding
		for _, b := range imp.bindings {
			if counts[b.local] == 1 {
				live = append(live, b)
			}
		}
		if len(live) == 0 {
			continue
		}
		// One shared module-object temp per import statement; every live
		// local becomes a property read off it. The snapshot declarator's
		// require('m') call is reused so the module hint location survives.
		first := imp.decl.Decls[live[0].declIdx]
		req := first.Init.(*ast.MemberExpr).Obj
		tmp := freshTmp()
		drop := map[int]bool{}
		for _, b := range live {
			drop[b.declIdx] = true
			repl[b.local] = esmRepl{obj: tmp, prop: b.prop}
		}
		decls := []*ast.Declarator{{Name: tmp, Init: req, Loc: first.Loc}}
		for i, d := range imp.decl.Decls {
			if !drop[i] {
				decls = append(decls, d)
			}
		}
		imp.decl.Decls = decls
	}

	for _, exp := range p.esmExports {
		anyLive := false
		for _, name := range exp.names {
			if counts[name] == 1 {
				anyLive = true
				break
			}
		}
		if !anyLive {
			continue
		}
		// Live names collapse `var x = init; exports.x = x` into a single
		// `exports.x = init`; the rest keep the declaration+snapshot pair.
		var body []ast.Stmt
		for _, dd := range exp.decl.Decls {
			if counts[dd.Name] == 1 {
				var init ast.Expr = &ast.UndefinedLit{Loc: dd.Loc}
				if dd.Init != nil {
					init = dd.Init
				}
				body = append(body, exportAssignStmt(dd.Loc, dd.Name, init))
				repl[dd.Name] = esmRepl{obj: "exports", prop: dd.Name}
				continue
			}
			body = append(body,
				&ast.VarDecl{Kind: exp.decl.Kind, Decls: []*ast.Declarator{dd}, Loc: dd.Loc},
				exportAssignStmt(dd.Loc, dd.Name, &ast.Ident{Name: dd.Name, Loc: dd.Loc}))
		}
		exp.block.Body = body
	}

	if len(repl) > 0 {
		rw := &esmRewriter{repl: repl}
		rw.stmts(prog.Body)
	}
}

// declCounts counts every declaration of each name in the module: function
// names and parameters, var/let/const declarators, for-in loop targets, and
// catch parameters.
func declCounts(prog *ast.Program) map[string]int {
	counts := map[string]int{}
	ast.Walk(prog, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if n.Name != "" {
				counts[n.Name]++
			}
			for _, p := range n.Params {
				counts[p]++
			}
		case *ast.VarDecl:
			for _, d := range n.Decls {
				counts[d.Name]++
			}
		case *ast.ForInStmt:
			// Counted even without a declaration kind: the loop writes the
			// name, and a string field cannot become a member expression.
			counts[n.Name]++
		case *ast.TryStmt:
			if n.CatchParam != "" {
				counts[n.CatchParam]++
			}
		}
		return true
	})
	return counts
}

// esmRewriter replaces identifier uses with member expressions, in place.
// Scope tracking is unnecessary: qualifying names are declared nowhere else
// in the module (see applyESMLiveBindings), so every occurrence is a use of
// the module binding.
type esmRewriter struct{ repl map[string]esmRepl }

func (rw *esmRewriter) stmts(ss []ast.Stmt) {
	for _, s := range ss {
		rw.stmt(s)
	}
}

func (rw *esmRewriter) block(b *ast.BlockStmt) {
	if b != nil {
		rw.stmts(b.Body)
	}
}

func (rw *esmRewriter) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.VarDecl:
		for _, d := range s.Decls {
			d.Init = rw.expr(d.Init)
		}
	case *ast.FuncDecl:
		rw.expr(s.Fn)
	case *ast.ExprStmt:
		s.X = rw.expr(s.X)
	case *ast.BlockStmt:
		rw.block(s)
	case *ast.IfStmt:
		s.Cond = rw.expr(s.Cond)
		rw.stmt(s.Then)
		if s.Else != nil {
			rw.stmt(s.Else)
		}
	case *ast.WhileStmt:
		s.Cond = rw.expr(s.Cond)
		rw.stmt(s.Body)
	case *ast.DoWhileStmt:
		rw.stmt(s.Body)
		s.Cond = rw.expr(s.Cond)
	case *ast.ForStmt:
		if s.Init != nil {
			rw.stmt(s.Init)
		}
		s.Cond = rw.expr(s.Cond)
		s.Post = rw.expr(s.Post)
		rw.stmt(s.Body)
	case *ast.ForInStmt:
		s.Obj = rw.expr(s.Obj)
		rw.stmt(s.Body)
	case *ast.ReturnStmt:
		s.X = rw.expr(s.X)
	case *ast.ThrowStmt:
		s.X = rw.expr(s.X)
	case *ast.TryStmt:
		rw.block(s.Block)
		rw.block(s.Catch)
		rw.block(s.Finally)
	case *ast.SwitchStmt:
		s.Disc = rw.expr(s.Disc)
		for _, c := range s.Cases {
			c.Test = rw.expr(c.Test)
			rw.stmts(c.Body)
		}
	}
}

func (rw *esmRewriter) expr(e ast.Expr) ast.Expr {
	if e == nil {
		return nil
	}
	switch e := e.(type) {
	case *ast.Ident:
		if r, ok := rw.repl[e.Name]; ok {
			return &ast.MemberExpr{
				Obj:  &ast.Ident{Name: r.obj, Loc: e.Loc},
				Prop: r.prop,
				Loc:  e.Loc,
			}
		}
	case *ast.TemplateLit:
		for i := range e.Exprs {
			e.Exprs[i] = rw.expr(e.Exprs[i])
		}
	case *ast.ArrayLit:
		for i := range e.Elems {
			e.Elems[i] = rw.expr(e.Elems[i])
		}
	case *ast.ObjectLit:
		for _, p := range e.Props {
			p.Computed = rw.expr(p.Computed)
			p.Value = rw.expr(p.Value)
		}
	case *ast.FuncLit:
		rw.block(e.Body)
		e.ExprBody = rw.expr(e.ExprBody)
	case *ast.CallExpr:
		e.Callee = rw.expr(e.Callee)
		for i := range e.Args {
			e.Args[i] = rw.expr(e.Args[i])
		}
	case *ast.NewExpr:
		e.Callee = rw.expr(e.Callee)
		for i := range e.Args {
			e.Args[i] = rw.expr(e.Args[i])
		}
	case *ast.MemberExpr:
		e.Obj = rw.expr(e.Obj)
		e.PropExpr = rw.expr(e.PropExpr)
	case *ast.AssignExpr:
		e.Target = rw.expr(e.Target)
		e.Value = rw.expr(e.Value)
	case *ast.BinaryExpr:
		e.L = rw.expr(e.L)
		e.R = rw.expr(e.R)
	case *ast.LogicalExpr:
		e.L = rw.expr(e.L)
		e.R = rw.expr(e.R)
	case *ast.UnaryExpr:
		e.X = rw.expr(e.X)
	case *ast.UpdateExpr:
		e.X = rw.expr(e.X)
	case *ast.CondExpr:
		e.Cond = rw.expr(e.Cond)
		e.Then = rw.expr(e.Then)
		e.Else = rw.expr(e.Else)
	case *ast.SeqExpr:
		for i := range e.Exprs {
			e.Exprs[i] = rw.expr(e.Exprs[i])
		}
	case *ast.SpreadExpr:
		e.X = rw.expr(e.X)
	case *ast.YieldExpr:
		e.X = rw.expr(e.X)
	}
	return e
}
