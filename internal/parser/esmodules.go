package parser

import (
	"repro/internal/ast"
	"repro/internal/lexer"
	"repro/internal/loc"
)

// ES-module support. The paper notes the approach "also works for ES
// modules"; this front end desugars ESM syntax to the CommonJS constructs
// the module system executes, so imports resolve through the same require
// machinery (and dynamic-import-style hints behave identically):
//
//	import def from 'm';              var def = require('m').default !== undefined
//	                                      ? require('m').default : require('m');
//	import {a, b as c} from 'm';      var a = require('m').a, c = require('m').b;
//	import * as ns from 'm';          var ns = require('m');
//	import 'm';                       require('m');
//	export function f() {}            function f() {} exports.f = f;
//	export var x = 1;                 var x = 1; exports.x = x;
//	export default expr;              exports["default"] = expr;
//	export {a, b as c};               exports.a = a; exports.c = b;
//
// Since "import" and "export" are not reserved words in this lexer, they
// arrive as identifiers; the statement parser intercepts them in statement
// position when the following tokens match module syntax.

// tryModuleStmt recognizes import/export statements. It consumes nothing
// unless the statement-position identifier is followed by module syntax.
func (p *parser) tryModuleStmt() (ast.Stmt, bool) {
	t := p.peek()
	if t.Kind != lexer.Ident {
		return nil, false
	}
	switch t.Text {
	case "import":
		n := p.peekAt(1)
		ok := n.Kind == lexer.String || // import 'm';
			n.Kind == lexer.Ident || // import def from 'm';
			(n.Kind == lexer.Punct && (n.Text == "{" || n.Text == "*"))
		if !ok {
			return nil, false
		}
		return p.importStmt(), true
	case "export":
		n := p.peekAt(1)
		ok := (n.Kind == lexer.Keyword && (n.Text == "function" || n.Text == "var" ||
			n.Text == "let" || n.Text == "const" || n.Text == "class" || n.Text == "async" ||
			n.Text == "default")) ||
			(n.Kind == lexer.Ident && n.Text == "default") ||
			(n.Kind == lexer.Punct && n.Text == "{")
		if !ok {
			return nil, false
		}
		return p.exportStmt(), true
	}
	return nil, false
}

// requireCallExpr builds require('name') at the given location.
func requireCallExpr(at loc.Loc, name string) *ast.CallExpr {
	return &ast.CallExpr{
		Callee: &ast.Ident{Name: "require", Loc: at},
		Args:   []ast.Expr{&ast.StringLit{Value: name, Loc: at}},
		Loc:    at,
	}
}

func (p *parser) importStmt() ast.Stmt {
	kw := p.next() // consume "import"
	at := kw.Loc

	// import 'm';
	if p.at(lexer.String) {
		mod := p.next().Str
		p.expectSemi()
		return &ast.ExprStmt{X: requireCallExpr(at, mod)}
	}

	type binding struct {
		local    string
		imported string // "" = whole namespace, "default" = default export
	}
	var bindings []binding

	parseNamed := func() {
		p.expectPunct("{")
		for !p.atPunct("}") && !p.at(lexer.EOF) {
			imported, _ := p.identName()
			local := imported
			if p.at(lexer.Ident) && p.peek().Text == "as" {
				p.next()
				local, _ = p.identName()
			}
			bindings = append(bindings, binding{local: local, imported: imported})
			if !p.eatPunct(",") {
				break
			}
		}
		p.expectPunct("}")
	}

	switch {
	case p.atPunct("{"):
		parseNamed()
	case p.atPunct("*"):
		p.next()
		if !(p.at(lexer.Ident) && p.peek().Text == "as") {
			p.fail(p.peek().Loc, "expected 'as' after import *")
		}
		p.next()
		local, _ := p.identName()
		bindings = append(bindings, binding{local: local})
	default:
		// default import, optionally followed by named imports.
		local, _ := p.identName()
		bindings = append(bindings, binding{local: local, imported: "default"})
		if p.eatPunct(",") {
			if p.atPunct("{") {
				parseNamed()
			} else if p.atPunct("*") {
				p.next()
				p.next() // as
				ns, _ := p.identName()
				bindings = append(bindings, binding{local: ns})
			}
		}
	}

	if !(p.at(lexer.Ident) && p.peek().Text == "from") {
		p.fail(p.peek().Loc, "expected 'from' in import statement")
	}
	p.next()
	if !p.at(lexer.String) {
		p.fail(p.peek().Loc, "expected module specifier string")
	}
	mod := p.next().Str
	p.expectSemi()

	decl := &ast.VarDecl{Kind: ast.Var, Loc: at}
	for _, b := range bindings {
		var init ast.Expr = requireCallExpr(at, mod)
		switch b.imported {
		case "":
			// namespace import: the whole exports object.
		case "default":
			// CommonJS interop: prefer .default when present, else the
			// exports value itself.
			withDefault := &ast.MemberExpr{Obj: requireCallExpr(at, mod), Prop: "default", Loc: at}
			init = &ast.LogicalExpr{Op: "??", L: withDefault, R: init, Loc: at}
		default:
			init = &ast.MemberExpr{Obj: init, Prop: b.imported, Loc: at}
		}
		decl.Decls = append(decl.Decls, &ast.Declarator{Name: b.local, Init: init, Loc: at})
	}
	return decl
}

func (p *parser) exportStmt() ast.Stmt {
	kw := p.next() // consume "export"
	at := kw.Loc

	exportAssign := func(name string, v ast.Expr) ast.Stmt {
		return &ast.ExprStmt{X: &ast.AssignExpr{
			Op:     "=",
			Target: &ast.MemberExpr{Obj: &ast.Ident{Name: "exports", Loc: at}, Prop: name, Loc: at},
			Value:  v,
			Loc:    at,
		}}
	}

	// export default expr;
	if (p.at(lexer.Keyword) && p.peek().Text == "default") ||
		(p.at(lexer.Ident) && p.peek().Text == "default") {
		p.next()
		// export default function f() {} keeps the function hoistable-ish;
		// treat uniformly as an expression.
		var v ast.Expr
		if p.atKeyword("function") {
			v = p.funcLit(false)
		} else if p.atKeyword("class") {
			v, _ = p.classExpr()
		} else {
			v = p.assignExpr()
		}
		p.expectSemi()
		return exportAssign("default", v)
	}

	// export {a, b as c};
	if p.atPunct("{") {
		p.next()
		block := &ast.BlockStmt{Loc: at}
		for !p.atPunct("}") && !p.at(lexer.EOF) {
			local, lloc := p.identName()
			exported := local
			if p.at(lexer.Ident) && p.peek().Text == "as" {
				p.next()
				exported, _ = p.identName()
			}
			block.Body = append(block.Body, exportAssign(exported, &ast.Ident{Name: local, Loc: lloc}))
			if !p.eatPunct(",") {
				break
			}
		}
		p.expectPunct("}")
		p.expectSemi()
		return block
	}

	// export <declaration>
	decl := p.statement()
	block := &ast.BlockStmt{Loc: at, Body: []ast.Stmt{decl}}
	switch d := decl.(type) {
	case *ast.FuncDecl:
		block.Body = append(block.Body, exportAssign(d.Fn.Name, &ast.Ident{Name: d.Fn.Name, Loc: at}))
	case *ast.VarDecl:
		for _, dd := range d.Decls {
			block.Body = append(block.Body, exportAssign(dd.Name, &ast.Ident{Name: dd.Name, Loc: dd.Loc}))
		}
	default:
		p.fail(at, "unsupported export declaration")
	}
	return block
}
