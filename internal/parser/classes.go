package parser

import (
	"repro/internal/ast"
	"repro/internal/lexer"
	"repro/internal/loc"
)

// Class support. Classes are desugared at parse time into the constructs
// the rest of the system already handles — constructor functions, prototype
// objects, and Object.defineProperty for accessors — so the interpreter,
// the approximate interpreter, and the static analysis all see ordinary
// prototype-based code:
//
//	class Name extends Super {            var Name = (function(SuperRef) {
//	  constructor(a) {                      function Name(a) {
//	    super(a);                             SuperRef.call(this, a);
//	    this.x = a;                           this.x = a;
//	  }                                     }
//	  m(b) { return super.m(b); }           Name.prototype = Object.create(SuperRef.prototype);
//	  static s() {}                         Name.prototype.constructor = Name;
//	  get g() { return 1; }         ⇒       Name.prototype.m = function m(b) {
//	}                                         return SuperRef.prototype.m.call(this, b);
//	                                        };
//	                                        Name.s = function s() {};
//	                                        Object.defineProperty(Name.prototype, "g",
//	                                          {get: function g() { return 1; }});
//	                                        return Name;
//	                                      })(Super);
//
// super references are rewritten against the hidden SuperRef parameter, so
// closures and the prototype chain behave as in real class semantics for
// the supported subset (no computed method names, no private fields).

// classMember is one parsed member before desugaring.
type classMember struct {
	name     string
	fn       *ast.FuncLit
	isStatic bool
	kind     ast.PropKind // NormalProp for methods, accessor kinds for get/set
	fieldVal ast.Expr     // non-nil for instance fields (name = expr)
	loc      loc.Loc
}

// classExpr parses a class declaration or expression starting at the
// `class` keyword and returns the desugared expression plus the class name
// ("" for anonymous class expressions).
func (p *parser) classExpr() (ast.Expr, string) {
	kw := p.expectKeyword("class")
	name := ""
	if p.at(lexer.Ident) || (p.at(lexer.Keyword) && lexer.IsContextualKeyword(p.peek().Text)) {
		name, _ = p.identName()
	}
	var superExpr ast.Expr
	if p.eatKeyword("extends") {
		superExpr = p.callExpr() // LeftHandSideExpression
	}
	members := p.classBody()
	return p.desugarClass(kw.Loc, name, superExpr, members), name
}

func (p *parser) classBody() []*classMember {
	p.expectPunct("{")
	var members []*classMember
	for !p.atPunct("}") && !p.at(lexer.EOF) {
		if p.eatPunct(";") {
			continue
		}
		members = append(members, p.classMember())
	}
	p.expectPunct("}")
	return members
}

func (p *parser) classMember() *classMember {
	m := &classMember{kind: ast.NormalProp, loc: p.peek().Loc}

	if p.atKeyword("static") {
		// `static` may itself be a method name (static() {}).
		if n := p.peekAt(1); !(n.Kind == lexer.Punct && (n.Text == "(" || n.Text == "=")) {
			p.next()
			m.isStatic = true
		}
	}

	isAsync := false
	if p.atKeyword("async") {
		if n := p.peekAt(1); !(n.Kind == lexer.Punct && (n.Text == "(" || n.Text == "=")) {
			p.next()
			isAsync = true
		}
	}

	if p.atKeyword("get") || p.atKeyword("set") {
		// Accessor unless `get`/`set` is itself the member name.
		if n := p.peekAt(1); !(n.Kind == lexer.Punct && (n.Text == "(" || n.Text == "=")) {
			if p.peek().Text == "get" {
				m.kind = ast.GetterProp
			} else {
				m.kind = ast.SetterProp
			}
			p.next()
		}
	}

	// Member name: identifier, keyword, string, or number.
	t := p.peek()
	switch {
	case t.Kind == lexer.Ident || t.Kind == lexer.Keyword:
		p.next()
		m.name = t.Text
	case t.Kind == lexer.String:
		p.next()
		m.name = t.Str
	case t.Kind == lexer.Number:
		p.next()
		m.name = trimFloat(t.Num)
	default:
		p.fail(t.Loc, "expected class member name but found %s", t)
	}

	switch {
	case p.atPunct("("):
		f := &ast.FuncLit{Name: m.name, Loc: m.loc, RestIdx: -1, IsAsync: isAsync}
		p.parseParams(f)
		f.Body = p.blockStmt()
		m.fn = f
	case p.eatPunct("="):
		// Instance (or static) field.
		m.fieldVal = p.assignExpr()
		p.expectSemi()
	default:
		// Bare field declaration: `x;` — initializes to undefined.
		m.fieldVal = &ast.UndefinedLit{Loc: m.loc}
		p.expectSemi()
	}
	return m
}

// desugarClass builds the IIFE shown in the package comment.
func (p *parser) desugarClass(at loc.Loc, name string, superExpr ast.Expr, members []*classMember) ast.Expr {
	ctorName := name
	if ctorName == "" {
		ctorName = "AnonymousClass"
	}
	const superRef = "$super"
	hasSuper := superExpr != nil

	ident := func(n string) *ast.Ident { return &ast.Ident{Name: n, Loc: at} }
	ctorIdent := func() *ast.Ident { return ident(ctorName) }
	protoOf := func(base ast.Expr) ast.Expr {
		return &ast.MemberExpr{Obj: base, Prop: "prototype", Loc: at}
	}

	// Locate the constructor and the instance fields.
	var ctor *ast.FuncLit
	var fields []*classMember
	for _, m := range members {
		if m.fn != nil && m.name == "constructor" && !m.isStatic {
			ctor = m.fn
		}
		if m.fieldVal != nil && !m.isStatic {
			fields = append(fields, m)
		}
	}
	if ctor == nil {
		// Default constructor: super(...arguments) when extending.
		body := &ast.BlockStmt{Loc: at}
		if hasSuper {
			body.Body = append(body.Body, &ast.ExprStmt{X: &ast.CallExpr{
				Callee: &ast.MemberExpr{Obj: ident(superRef), Prop: "apply", Loc: at},
				Args:   []ast.Expr{&ast.ThisExpr{Loc: at}, ident("arguments")},
				Loc:    at,
			}})
		}
		ctor = &ast.FuncLit{Name: ctorName, Body: body, RestIdx: -1, Loc: at}
	} else {
		ctor.Name = ctorName
	}

	// Instance fields initialize at the top of the constructor.
	var fieldInits []ast.Stmt
	for _, f := range fields {
		fieldInits = append(fieldInits, &ast.ExprStmt{X: &ast.AssignExpr{
			Op:     "=",
			Target: &ast.MemberExpr{Obj: &ast.ThisExpr{Loc: f.loc}, Prop: f.name, Loc: f.loc},
			Value:  f.fieldVal,
			Loc:    f.loc,
		}})
	}
	ctor.Body.Body = append(fieldInits, ctor.Body.Body...)

	// Rewrite super references in the constructor and every method.
	if hasSuper {
		rewriteSuper(ctor, superRef)
	}

	wrapper := &ast.BlockStmt{Loc: at}
	wrapper.Body = append(wrapper.Body, &ast.FuncDecl{Fn: ctor})

	if hasSuper {
		// Name.prototype = Object.create($super.prototype);
		wrapper.Body = append(wrapper.Body, &ast.ExprStmt{X: &ast.AssignExpr{
			Op:     "=",
			Target: protoOf(ctorIdent()),
			Value: &ast.CallExpr{
				Callee: &ast.MemberExpr{Obj: ident("Object"), Prop: "create", Loc: at},
				Args:   []ast.Expr{protoOf(ident(superRef))},
				Loc:    at,
			},
			Loc: at,
		}})
		// Name.prototype.constructor = Name;
		wrapper.Body = append(wrapper.Body, &ast.ExprStmt{X: &ast.AssignExpr{
			Op:     "=",
			Target: &ast.MemberExpr{Obj: protoOf(ctorIdent()), Prop: "constructor", Loc: at},
			Value:  ctorIdent(),
			Loc:    at,
		}})
	}

	// Methods, static methods, and accessors.
	accessors := map[string][2]*ast.FuncLit{} // proto accessors: [getter, setter]
	staticAccessors := map[string][2]*ast.FuncLit{}
	for _, m := range members {
		if m.fn == nil || (m.name == "constructor" && !m.isStatic) {
			continue
		}
		if hasSuper {
			rewriteSuper(m.fn, superRef)
		}
		if m.kind != ast.NormalProp {
			table := accessors
			if m.isStatic {
				table = staticAccessors
			}
			pair := table[m.name]
			if m.kind == ast.GetterProp {
				pair[0] = m.fn
			} else {
				pair[1] = m.fn
			}
			table[m.name] = pair
			continue
		}
		var target ast.Expr
		if m.isStatic {
			target = &ast.MemberExpr{Obj: ctorIdent(), Prop: m.name, Loc: m.loc}
		} else {
			target = &ast.MemberExpr{Obj: protoOf(ctorIdent()), Prop: m.name, Loc: m.loc}
		}
		wrapper.Body = append(wrapper.Body, &ast.ExprStmt{X: &ast.AssignExpr{
			Op: "=", Target: target, Value: m.fn, Loc: m.loc,
		}})
	}
	// Static fields.
	for _, m := range members {
		if m.fieldVal == nil || !m.isStatic {
			continue
		}
		wrapper.Body = append(wrapper.Body, &ast.ExprStmt{X: &ast.AssignExpr{
			Op:     "=",
			Target: &ast.MemberExpr{Obj: ctorIdent(), Prop: m.name, Loc: m.loc},
			Value:  m.fieldVal,
			Loc:    m.loc,
		}})
	}
	emitAccessors := func(table map[string][2]*ast.FuncLit, base func() ast.Expr) {
		// Deterministic order: sort names.
		var names []string
		for n := range table {
			names = append(names, n)
		}
		sortStrings(names)
		for _, n := range names {
			pair := table[n]
			desc := &ast.ObjectLit{Loc: at}
			if pair[0] != nil {
				desc.Props = append(desc.Props, &ast.Property{Key: "get", Value: pair[0], Loc: at})
			}
			if pair[1] != nil {
				desc.Props = append(desc.Props, &ast.Property{Key: "set", Value: pair[1], Loc: at})
			}
			wrapper.Body = append(wrapper.Body, &ast.ExprStmt{X: &ast.CallExpr{
				Callee: &ast.MemberExpr{Obj: ident("Object"), Prop: "defineProperty", Loc: at},
				Args:   []ast.Expr{base(), &ast.StringLit{Value: n, Loc: at}, desc},
				Loc:    at,
			}})
		}
	}
	emitAccessors(accessors, func() ast.Expr { return protoOf(ctorIdent()) })
	emitAccessors(staticAccessors, func() ast.Expr { return ctorIdent() })

	wrapper.Body = append(wrapper.Body, &ast.ReturnStmt{X: ctorIdent(), Loc: at})

	iife := &ast.FuncLit{RestIdx: -1, Body: wrapper, Loc: at}
	var args []ast.Expr
	if hasSuper {
		iife.Params = []string{superRef}
		args = []ast.Expr{superExpr}
	}
	return &ast.CallExpr{Callee: iife, Args: args, Loc: at}
}

func sortStrings(ss []string) {
	for i := 1; i < len(ss); i++ {
		for j := i; j > 0 && ss[j] < ss[j-1]; j-- {
			ss[j], ss[j-1] = ss[j-1], ss[j]
		}
	}
}

// rewriteSuper rewrites super(...) and super.m(...) / super.m references in
// fn's body against the hidden $super binding. The rewrite stops at nested
// non-arrow functions (their super belongs to an enclosing class in real
// JS, which the subset does not support; arrows inherit the binding).
func rewriteSuper(fn *ast.FuncLit, superRef string) {
	var rewriteExpr func(e ast.Expr) ast.Expr
	var rewriteStmt func(s ast.Stmt)

	isSuperIdent := func(e ast.Expr) bool {
		id, ok := e.(*ast.Ident)
		return ok && id.Name == "super"
	}

	rewriteExpr = func(e ast.Expr) ast.Expr {
		switch e := e.(type) {
		case nil:
			return nil
		case *ast.Ident:
			return e
		case *ast.CallExpr:
			// super(args) → $super.call(this, args)
			if isSuperIdent(e.Callee) {
				args := []ast.Expr{&ast.ThisExpr{Loc: e.Loc}}
				for _, a := range e.Args {
					args = append(args, rewriteExpr(a))
				}
				return &ast.CallExpr{
					Callee: &ast.MemberExpr{Obj: &ast.Ident{Name: superRef, Loc: e.Loc}, Prop: "call", Loc: e.Loc},
					Args:   args,
					Loc:    e.Loc,
				}
			}
			// super.m(args) → $super.prototype.m.call(this, args)
			if mem, ok := e.Callee.(*ast.MemberExpr); ok && isSuperIdent(mem.Obj) && !mem.Computed {
				args := []ast.Expr{&ast.ThisExpr{Loc: e.Loc}}
				for _, a := range e.Args {
					args = append(args, rewriteExpr(a))
				}
				superMethod := &ast.MemberExpr{
					Obj: &ast.MemberExpr{
						Obj:  &ast.Ident{Name: superRef, Loc: mem.Loc},
						Prop: "prototype", Loc: mem.Loc,
					},
					Prop: mem.Prop, Loc: mem.Loc,
				}
				return &ast.CallExpr{
					Callee: &ast.MemberExpr{Obj: superMethod, Prop: "call", Loc: e.Loc},
					Args:   args,
					Loc:    e.Loc,
				}
			}
			e.Callee = rewriteExpr(e.Callee)
			for i := range e.Args {
				e.Args[i] = rewriteExpr(e.Args[i])
			}
			return e
		case *ast.MemberExpr:
			// Bare super.m → $super.prototype.m
			if isSuperIdent(e.Obj) && !e.Computed {
				return &ast.MemberExpr{
					Obj: &ast.MemberExpr{
						Obj:  &ast.Ident{Name: superRef, Loc: e.Loc},
						Prop: "prototype", Loc: e.Loc,
					},
					Prop: e.Prop, Loc: e.Loc,
				}
			}
			e.Obj = rewriteExpr(e.Obj)
			e.PropExpr = rewriteExpr(e.PropExpr)
			return e
		case *ast.AssignExpr:
			e.Target = rewriteExpr(e.Target)
			e.Value = rewriteExpr(e.Value)
			return e
		case *ast.BinaryExpr:
			e.L, e.R = rewriteExpr(e.L), rewriteExpr(e.R)
			return e
		case *ast.LogicalExpr:
			e.L, e.R = rewriteExpr(e.L), rewriteExpr(e.R)
			return e
		case *ast.UnaryExpr:
			e.X = rewriteExpr(e.X)
			return e
		case *ast.UpdateExpr:
			e.X = rewriteExpr(e.X)
			return e
		case *ast.CondExpr:
			e.Cond, e.Then, e.Else = rewriteExpr(e.Cond), rewriteExpr(e.Then), rewriteExpr(e.Else)
			return e
		case *ast.SeqExpr:
			for i := range e.Exprs {
				e.Exprs[i] = rewriteExpr(e.Exprs[i])
			}
			return e
		case *ast.NewExpr:
			e.Callee = rewriteExpr(e.Callee)
			for i := range e.Args {
				e.Args[i] = rewriteExpr(e.Args[i])
			}
			return e
		case *ast.ArrayLit:
			for i := range e.Elems {
				e.Elems[i] = rewriteExpr(e.Elems[i])
			}
			return e
		case *ast.ObjectLit:
			for _, pr := range e.Props {
				pr.Computed = rewriteExpr(pr.Computed)
				pr.Value = rewriteExpr(pr.Value)
			}
			return e
		case *ast.TemplateLit:
			for i := range e.Exprs {
				e.Exprs[i] = rewriteExpr(e.Exprs[i])
			}
			return e
		case *ast.SpreadExpr:
			e.X = rewriteExpr(e.X)
			return e
		case *ast.FuncLit:
			// Arrows inherit the super binding; ordinary nested functions
			// do not (and cannot legally contain super in real JS).
			if e.IsArrow {
				if e.ExprBody != nil {
					e.ExprBody = rewriteExpr(e.ExprBody)
				}
				if e.Body != nil {
					for _, st := range e.Body.Body {
						rewriteStmt(st)
					}
				}
			}
			return e
		default:
			return e
		}
	}

	rewriteStmt = func(s ast.Stmt) {
		switch s := s.(type) {
		case nil:
		case *ast.VarDecl:
			for _, d := range s.Decls {
				d.Init = rewriteExpr(d.Init)
			}
		case *ast.ExprStmt:
			s.X = rewriteExpr(s.X)
		case *ast.BlockStmt:
			for _, st := range s.Body {
				rewriteStmt(st)
			}
		case *ast.IfStmt:
			s.Cond = rewriteExpr(s.Cond)
			rewriteStmt(s.Then)
			rewriteStmt(s.Else)
		case *ast.WhileStmt:
			s.Cond = rewriteExpr(s.Cond)
			rewriteStmt(s.Body)
		case *ast.DoWhileStmt:
			rewriteStmt(s.Body)
			s.Cond = rewriteExpr(s.Cond)
		case *ast.ForStmt:
			rewriteStmt(s.Init)
			s.Cond = rewriteExpr(s.Cond)
			s.Post = rewriteExpr(s.Post)
			rewriteStmt(s.Body)
		case *ast.ForInStmt:
			s.Obj = rewriteExpr(s.Obj)
			rewriteStmt(s.Body)
		case *ast.ReturnStmt:
			s.X = rewriteExpr(s.X)
		case *ast.ThrowStmt:
			s.X = rewriteExpr(s.X)
		case *ast.TryStmt:
			rewriteStmt(s.Block)
			if s.Catch != nil {
				rewriteStmt(s.Catch)
			}
			if s.Finally != nil {
				rewriteStmt(s.Finally)
			}
		case *ast.SwitchStmt:
			s.Disc = rewriteExpr(s.Disc)
			for _, c := range s.Cases {
				c.Test = rewriteExpr(c.Test)
				for _, st := range c.Body {
					rewriteStmt(st)
				}
			}
		}
	}

	if fn.ExprBody != nil {
		fn.ExprBody = rewriteExpr(fn.ExprBody)
	}
	if fn.Body != nil {
		for _, st := range fn.Body.Body {
			rewriteStmt(st)
		}
	}
}
