package parser

import (
	"testing"

	"repro/internal/ast"
)

func parse(t *testing.T, src string) *ast.Program {
	t.Helper()
	prog, err := Parse("test.js", src)
	if err != nil {
		t.Fatalf("parse error: %v\nsource:\n%s", err, src)
	}
	return prog
}

func parseErr(t *testing.T, src string) error {
	t.Helper()
	_, err := Parse("test.js", src)
	if err == nil {
		t.Fatalf("expected parse error for:\n%s", src)
	}
	return err
}

func TestVarDecl(t *testing.T) {
	prog := parse(t, "var a = 1, b;\nlet c = 'x';\nconst d = true;")
	if len(prog.Body) != 3 {
		t.Fatalf("got %d statements", len(prog.Body))
	}
	vd := prog.Body[0].(*ast.VarDecl)
	if vd.Kind != ast.Var || len(vd.Decls) != 2 {
		t.Errorf("var decl = %+v", vd)
	}
	if vd.Decls[0].Name != "a" || vd.Decls[1].Init != nil {
		t.Errorf("declarators wrong: %+v", vd.Decls)
	}
	if prog.Body[1].(*ast.VarDecl).Kind != ast.Let {
		t.Error("let not recognized")
	}
	if prog.Body[2].(*ast.VarDecl).Kind != ast.Const {
		t.Error("const not recognized")
	}
}

func TestFunctionForms(t *testing.T) {
	prog := parse(t, `
function decl(a, b) { return a + b; }
var expr = function(x) { return x; };
var named = function me(x) { return me; };
var arrow1 = x => x + 1;
var arrow2 = (a, b) => { return a * b; };
var arrow0 = () => 42;
var rest = function(a, ...rest) { return rest; };
`)
	fd := prog.Body[0].(*ast.FuncDecl)
	if fd.Fn.Name != "decl" || len(fd.Fn.Params) != 2 {
		t.Errorf("decl = %+v", fd.Fn)
	}
	arrow1 := prog.Body[3].(*ast.VarDecl).Decls[0].Init.(*ast.FuncLit)
	if !arrow1.IsArrow || arrow1.ExprBody == nil || len(arrow1.Params) != 1 {
		t.Errorf("arrow1 = %+v", arrow1)
	}
	arrow2 := prog.Body[4].(*ast.VarDecl).Decls[0].Init.(*ast.FuncLit)
	if !arrow2.IsArrow || arrow2.Body == nil {
		t.Errorf("arrow2 = %+v", arrow2)
	}
	restFn := prog.Body[6].(*ast.VarDecl).Decls[0].Init.(*ast.FuncLit)
	if restFn.RestIdx != 1 {
		t.Errorf("rest idx = %d", restFn.RestIdx)
	}
}

func TestMemberAndCall(t *testing.T) {
	prog := parse(t, "a.b.c(1)[d](e.f);")
	// Outer node: call with args (e.f)
	call := prog.Body[0].(*ast.ExprStmt).X.(*ast.CallExpr)
	if len(call.Args) != 1 {
		t.Fatalf("outer args = %d", len(call.Args))
	}
	dyn := call.Callee.(*ast.MemberExpr)
	if !dyn.Computed {
		t.Fatal("expected computed member for [d]")
	}
	inner := dyn.Obj.(*ast.CallExpr)
	mem := inner.Callee.(*ast.MemberExpr)
	if mem.Prop != "c" || mem.Computed {
		t.Errorf("inner member = %+v", mem)
	}
}

func TestDynamicPropertyAccess(t *testing.T) {
	prog := parse(t, `obj[key] = val; x = obj[key];`)
	asn := prog.Body[0].(*ast.ExprStmt).X.(*ast.AssignExpr)
	target := asn.Target.(*ast.MemberExpr)
	if !target.Computed {
		t.Error("write target should be computed")
	}
	read := prog.Body[1].(*ast.ExprStmt).X.(*ast.AssignExpr).Value.(*ast.MemberExpr)
	if !read.Computed {
		t.Error("read should be computed")
	}
}

func TestObjectLiteral(t *testing.T) {
	prog := parse(t, `var o = {a: 1, "b c": 2, [k]: 3, short, method(x) { return x; }, get g() { return 1; }, set s(v) { this.v = v; }};`)
	lit := prog.Body[0].(*ast.VarDecl).Decls[0].Init.(*ast.ObjectLit)
	if len(lit.Props) != 7 {
		t.Fatalf("props = %d", len(lit.Props))
	}
	if lit.Props[1].Key != "b c" {
		t.Errorf("string key = %q", lit.Props[1].Key)
	}
	if lit.Props[2].Computed == nil {
		t.Error("computed key missing")
	}
	if lit.Props[3].Key != "short" {
		t.Errorf("shorthand key = %q", lit.Props[3].Key)
	}
	if _, ok := lit.Props[4].Value.(*ast.FuncLit); !ok {
		t.Error("method shorthand not a function")
	}
	if lit.Props[5].Kind != ast.GetterProp || lit.Props[6].Kind != ast.SetterProp {
		t.Error("accessors not recognized")
	}
}

func TestGetSetAsPlainKeys(t *testing.T) {
	prog := parse(t, `var o = {get: 1, set: 2};`)
	lit := prog.Body[0].(*ast.VarDecl).Decls[0].Init.(*ast.ObjectLit)
	if lit.Props[0].Key != "get" || lit.Props[0].Kind != ast.NormalProp {
		t.Errorf("get as key = %+v", lit.Props[0])
	}
}

func TestControlFlow(t *testing.T) {
	parse(t, `
if (a) b(); else { c(); }
while (x < 10) x++;
do { y--; } while (y);
for (var i = 0; i < n; i++) sum += i;
for (;;) { break; }
for (var k in obj) visit(k);
for (const v of list) use(v);
for (k in obj) {}
switch (x) { case 1: a(); break; case 2: default: b(); }
try { f(); } catch (e) { g(e); } finally { h(); }
try { f(); } catch { g(); }
throw new Error("boom");
`)
}

func TestForInVsForClassic(t *testing.T) {
	prog := parse(t, "for (var k in o) {}\nfor (var i = 0; i < 2; i++) {}")
	if fi, ok := prog.Body[0].(*ast.ForInStmt); !ok || fi.IsOf || fi.Name != "k" {
		t.Errorf("for-in = %+v", prog.Body[0])
	}
	if _, ok := prog.Body[1].(*ast.ForStmt); !ok {
		t.Errorf("classic for = %T", prog.Body[1])
	}
}

func TestPrecedence(t *testing.T) {
	prog := parse(t, "x = 1 + 2 * 3;")
	add := prog.Body[0].(*ast.ExprStmt).X.(*ast.AssignExpr).Value.(*ast.BinaryExpr)
	if add.Op != "+" {
		t.Fatalf("top op = %s", add.Op)
	}
	mul := add.R.(*ast.BinaryExpr)
	if mul.Op != "*" {
		t.Errorf("right = %s", mul.Op)
	}

	prog = parse(t, "x = a || b && c;")
	or := prog.Body[0].(*ast.ExprStmt).X.(*ast.AssignExpr).Value.(*ast.LogicalExpr)
	if or.Op != "||" {
		t.Fatalf("top op = %s", or.Op)
	}
	if or.R.(*ast.LogicalExpr).Op != "&&" {
		t.Error("&& should bind tighter than ||")
	}
}

func TestExponentRightAssoc(t *testing.T) {
	prog := parse(t, "x = 2 ** 3 ** 2;")
	top := prog.Body[0].(*ast.ExprStmt).X.(*ast.AssignExpr).Value.(*ast.BinaryExpr)
	if _, ok := top.R.(*ast.BinaryExpr); !ok {
		t.Error("** should be right-associative")
	}
}

func TestAssignmentChain(t *testing.T) {
	prog := parse(t, "a = b = c;")
	outer := prog.Body[0].(*ast.ExprStmt).X.(*ast.AssignExpr)
	if _, ok := outer.Value.(*ast.AssignExpr); !ok {
		t.Error("assignment should be right-associative")
	}
	parseErr(t, "1 = x;")
}

func TestModuleExportsPattern(t *testing.T) {
	// The canonical CommonJS idiom from the paper's Fig. 1b.
	prog := parse(t, "exports = module.exports = createApplication;")
	outer := prog.Body[0].(*ast.ExprStmt).X.(*ast.AssignExpr)
	inner := outer.Value.(*ast.AssignExpr)
	mem := inner.Target.(*ast.MemberExpr)
	if mem.Prop != "exports" {
		t.Errorf("inner target = %+v", mem)
	}
}

func TestNewExpressions(t *testing.T) {
	prog := parse(t, "var a = new Foo(1); var b = new ns.Bar(); var c = new Baz;")
	ne := prog.Body[0].(*ast.VarDecl).Decls[0].Init.(*ast.NewExpr)
	if len(ne.Args) != 1 {
		t.Errorf("args = %d", len(ne.Args))
	}
	ne2 := prog.Body[1].(*ast.VarDecl).Decls[0].Init.(*ast.NewExpr)
	if _, ok := ne2.Callee.(*ast.MemberExpr); !ok {
		t.Error("new ns.Bar callee should be a member expr")
	}
	ne3 := prog.Body[2].(*ast.VarDecl).Decls[0].Init.(*ast.NewExpr)
	if len(ne3.Args) != 0 {
		t.Error("new Baz should have no args")
	}
}

func TestNewCallBinding(t *testing.T) {
	// new a.b(c).d(e) — args (c) bind to new; then .d(e) is a call.
	prog := parse(t, "x = new a.b(c).d(e);")
	call := prog.Body[0].(*ast.ExprStmt).X.(*ast.AssignExpr).Value.(*ast.CallExpr)
	mem := call.Callee.(*ast.MemberExpr)
	if _, ok := mem.Obj.(*ast.NewExpr); !ok {
		t.Errorf("expected new under member, got %T", mem.Obj)
	}
}

func TestASI(t *testing.T) {
	parse(t, "var a = 1\nvar b = 2\na + b")
	parse(t, "return")
	prog := parse(t, "function f() {\n  return\n  1\n}")
	fn := prog.Body[0].(*ast.FuncDecl).Fn
	ret := fn.Body.Body[0].(*ast.ReturnStmt)
	if ret.X != nil {
		t.Error("restricted production: return across newline must return undefined")
	}
	parseErr(t, "var a = 1 var b = 2")
}

func TestTemplateLiteral(t *testing.T) {
	prog := parse(t, "var s = `a${x}b${y + 1}c`;")
	lit := prog.Body[0].(*ast.VarDecl).Decls[0].Init.(*ast.TemplateLit)
	if len(lit.Quasis) != 3 || len(lit.Exprs) != 2 {
		t.Fatalf("quasis=%d exprs=%d", len(lit.Quasis), len(lit.Exprs))
	}
	if lit.Quasis[0] != "a" || lit.Quasis[1] != "b" || lit.Quasis[2] != "c" {
		t.Errorf("quasis = %q", lit.Quasis)
	}
	if _, ok := lit.Exprs[1].(*ast.BinaryExpr); !ok {
		t.Error("second interpolation should be a binary expr")
	}
}

func TestTemplateLocations(t *testing.T) {
	prog := parse(t, "var s = `ab${x}`;")
	lit := prog.Body[0].(*ast.VarDecl).Decls[0].Init.(*ast.TemplateLit)
	x := lit.Exprs[0].(*ast.Ident)
	// `ab${x}` — backtick at col 9, so x at col 14.
	if x.Loc.Line != 1 || x.Loc.Col != 14 {
		t.Errorf("interpolated x at %v", x.Loc)
	}
}

func TestSpread(t *testing.T) {
	prog := parse(t, "f(...args); var a = [1, ...rest];")
	call := prog.Body[0].(*ast.ExprStmt).X.(*ast.CallExpr)
	if _, ok := call.Args[0].(*ast.SpreadExpr); !ok {
		t.Error("call spread missing")
	}
	arr := prog.Body[1].(*ast.VarDecl).Decls[0].Init.(*ast.ArrayLit)
	if _, ok := arr.Elems[1].(*ast.SpreadExpr); !ok {
		t.Error("array spread missing")
	}
}

func TestUnaryAndUpdate(t *testing.T) {
	prog := parse(t, "x = typeof a; y = !b; z = -c; i++; --j; delete o.p; void 0;")
	u := prog.Body[0].(*ast.ExprStmt).X.(*ast.AssignExpr).Value.(*ast.UnaryExpr)
	if u.Op != "typeof" {
		t.Errorf("op = %s", u.Op)
	}
	post := prog.Body[3].(*ast.ExprStmt).X.(*ast.UpdateExpr)
	if post.Prefix || post.Op != "++" {
		t.Errorf("postfix = %+v", post)
	}
	pre := prog.Body[4].(*ast.ExprStmt).X.(*ast.UpdateExpr)
	if !pre.Prefix || pre.Op != "--" {
		t.Errorf("prefix = %+v", pre)
	}
}

func TestConditionalAndSequence(t *testing.T) {
	prog := parse(t, "x = a ? b : c; y = (1, 2, 3);")
	if _, ok := prog.Body[0].(*ast.ExprStmt).X.(*ast.AssignExpr).Value.(*ast.CondExpr); !ok {
		t.Error("ternary missing")
	}
	seq := prog.Body[1].(*ast.ExprStmt).X.(*ast.AssignExpr).Value.(*ast.SeqExpr)
	if len(seq.Exprs) != 3 {
		t.Errorf("seq = %d", len(seq.Exprs))
	}
}

func TestRegexLiteral(t *testing.T) {
	prog := parse(t, `var re = /a+b/gi; s.replace(/x/, "y");`)
	re := prog.Body[0].(*ast.VarDecl).Decls[0].Init.(*ast.RegexLit)
	if re.Pattern != "a+b" || re.Flags != "gi" {
		t.Errorf("regex = %+v", re)
	}
}

func TestInOperatorVsForIn(t *testing.T) {
	prog := parse(t, `if ("a" in obj) f();`)
	cond := prog.Body[0].(*ast.IfStmt).Cond.(*ast.BinaryExpr)
	if cond.Op != "in" {
		t.Errorf("op = %s", cond.Op)
	}
}

func TestKeywordPropertyNames(t *testing.T) {
	parse(t, "o.delete(); o.in; o.new; o.typeof;")
}

func TestClassDesugaring(t *testing.T) {
	// Classes desugar to prototype-based code at parse time: a class
	// declaration becomes `var Name = (function(){…})()`.
	prog := parse(t, "class Foo { constructor(a) { this.a = a; } m() { return this.a; } }")
	vd, ok := prog.Body[0].(*ast.VarDecl)
	if !ok || vd.Decls[0].Name != "Foo" {
		t.Fatalf("class did not desugar to a var declaration: %T", prog.Body[0])
	}
	call, ok := vd.Decls[0].Init.(*ast.CallExpr)
	if !ok {
		t.Fatalf("init is %T, want IIFE", vd.Decls[0].Init)
	}
	iife := call.Callee.(*ast.FuncLit)
	if len(iife.Body.Body) < 3 {
		t.Errorf("IIFE body too small: %d statements", len(iife.Body.Body))
	}
	// Anonymous class expressions parse too.
	parse(t, "var C = class { m() {} };")
	// Class expressions with extends and super.
	parse(t, "class A {}\nclass B extends A { constructor() { super(); } go() { return super.toString(); } }")
	// A class declaration without a name is an error.
	parseErr(t, "class { m() {} }")
}

func TestLocationsAttached(t *testing.T) {
	prog := parse(t, "var o = {};\nvar f = function() {};")
	objLoc := prog.Body[0].(*ast.VarDecl).Decls[0].Init.Pos()
	if objLoc.Line != 1 || objLoc.Col != 9 {
		t.Errorf("object lit at %v", objLoc)
	}
	fnLoc := prog.Body[1].(*ast.VarDecl).Decls[0].Init.Pos()
	if fnLoc.Line != 2 || fnLoc.Col != 9 {
		t.Errorf("func lit at %v", fnLoc)
	}
	if objLoc.File != "test.js" {
		t.Errorf("file = %q", objLoc.File)
	}
}

func TestMotivatingExampleParses(t *testing.T) {
	// The paper's Fig. 1 code (lightly adapted to the subset).
	parse(t, `
var mixin = require('merge-descriptors');
var proto = require('./application');
exports = module.exports = createApplication;
function createApplication() {
  var app = function(req, res, next) {
    app.handle(req, res, next);
  };
  mixin(app, EventEmitter.prototype, false);
  mixin(app, proto, false);
  return app;
}
`)
	parse(t, `
module.exports = merge;
function merge(dest, src, redefine) {
  Object.getOwnPropertyNames(src).forEach(function forOwnPropertyName(name) {
    var descriptor = Object.getOwnPropertyDescriptor(src, name);
    Object.defineProperty(dest, name, descriptor);
  });
  return dest;
}
`)
	parse(t, `
var methods = require('methods');
var app = exports = module.exports = {};
methods.forEach(function(method) {
  app[method] = function(path) {
    var route = this._router.route(path);
    route[method].apply(route, slice.call(arguments, 1));
    return this;
  };
});
app.listen = function listen() {
  var server = http.createServer(this);
  return server.listen.apply(server, arguments);
};
`)
}

func TestParseExpr(t *testing.T) {
	e, err := ParseExpr("eval.js", "1 + 2 * 3")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := e.(*ast.BinaryExpr); !ok {
		t.Errorf("got %T", e)
	}
	if _, err := ParseExpr("eval.js", "1 +"); err == nil {
		t.Error("expected error")
	}
	if _, err := ParseExpr("eval.js", "1 2"); err == nil {
		t.Error("expected error for trailing input")
	}
}

func TestPrintRoundTrip(t *testing.T) {
	srcs := []string{
		"var a = 1 + 2 * 3;",
		"function f(a, b) { if (a) { return b; } return a; }",
		"var o = {x: 1, m(v) { return v; }, get g() { return 2; }};",
		"for (var i = 0; i < 10; i++) { s += i; }",
		"for (var k in o) { f(k); }",
		"var f = (a, b) => a + b;",
		"obj[key] = value;",
		"try { f(); } catch (e) { g(); } finally { h(); }",
		"switch (x) { case 1: a(); break; default: b(); }",
		"var t = `a${x}b`;",
		"f(...args);",
		"while (a) { do { b(); } while (c); }",
		"x = a ? b : c;",
		"throw new Error(\"x\");",
	}
	for _, src := range srcs {
		p1 := parse(t, src)
		out1 := ast.Print(p1)
		p2, err := Parse("test.js", out1)
		if err != nil {
			t.Errorf("reparse of printed output failed: %v\noriginal: %s\nprinted:\n%s", err, src, out1)
			continue
		}
		out2 := ast.Print(p2)
		if out1 != out2 {
			t.Errorf("print not stable for %q:\nfirst:\n%s\nsecond:\n%s", src, out1, out2)
		}
	}
}

func TestWalkCollectors(t *testing.T) {
	prog := parse(t, `
function outer() {
  var inner = function() { leaf(); };
  inner();
}
outer();
var o = new Thing();
`)
	fns := ast.Functions(prog)
	if len(fns) != 2 {
		t.Errorf("functions = %d, want 2", len(fns))
	}
	calls := ast.CallSites(prog)
	if len(calls) != 3 {
		t.Errorf("call sites = %d, want 3", len(calls))
	}
	news := ast.NewSites(prog)
	if len(news) != 1 {
		t.Errorf("new sites = %d, want 1", len(news))
	}
}
