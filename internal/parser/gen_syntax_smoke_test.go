package parser

import (
	"testing"

	"repro/internal/ast"
)

func TestGenSyntaxSmoke(t *testing.T) {
	src := "function* g(n) { yield n; yield* [1, 2]; yield; return 9; }\nvar it = g(3);\nfor (var v of it) { log(v); }\nvar obj = { gen: function* () { yield 1; } };\nasync function* ag() { yield (await p); }\n"
	prog, err := Parse("/t.js", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	out := ast.Print(prog)
	prog2, err := Parse("/t.js", out)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, out)
	}
	out2 := ast.Print(prog2)
	if out != out2 {
		t.Fatalf("round trip mismatch:\n%s\n---\n%s", out, out2)
	}
	nGen, nYield := 0, 0
	ast.Walk(prog, func(n ast.Node) bool {
		if f, ok := n.(*ast.FuncLit); ok && f.IsGenerator {
			nGen++
		}
		if _, ok := n.(*ast.YieldExpr); ok {
			nYield++
		}
		return true
	})
	if nGen != 3 || nYield != 5 {
		t.Fatalf("got %d generators, %d yields\n%s", nGen, nYield, out)
	}
}
