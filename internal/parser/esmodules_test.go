package parser

import (
	"strings"
	"testing"

	"repro/internal/ast"
)

// desugared parses ESM source and returns the printed CommonJS desugaring.
func desugared(t *testing.T, src string) string {
	t.Helper()
	return ast.Print(parse(t, src))
}

// wantAll asserts every fragment appears in the desugared output, wantNone
// that none of the forbidden ones do.
func wantAll(t *testing.T, got string, fragments ...string) {
	t.Helper()
	for _, f := range fragments {
		if !strings.Contains(got, f) {
			t.Errorf("desugared output missing %q:\n%s", f, got)
		}
	}
}

func wantNone(t *testing.T, got string, fragments ...string) {
	t.Helper()
	for _, f := range fragments {
		if strings.Contains(got, f) {
			t.Errorf("desugared output should not contain %q:\n%s", f, got)
		}
	}
}

func TestImportDesugarForms(t *testing.T) {
	// Bare import: just the require for its side effects.
	wantAll(t, desugared(t, `import 'm';`), `require("m");`)

	// Namespace import: the whole (already live) exports object.
	wantAll(t, desugared(t, `import * as ns from 'm'; ns.f();`),
		`var ns = require("m");`, "ns.f()")

	// Named imports are live: one shared module-object temp, every use
	// rewritten to a property read through it. No snapshot copy survives.
	got := desugared(t, `import {a, b as c} from 'm'; f(a, c);`)
	wantAll(t, got, `var __esm0 = require("m");`, "f(__esm0.a, __esm0.b)")
	wantNone(t, got, "var a =", "var c =")

	// Default import keeps the CommonJS-interop snapshot.
	got = desugared(t, `import d from 'm'; d();`)
	wantAll(t, got, `require("m").default`, "d()")

	// Default + named in one statement: the named part still goes live.
	got = desugared(t, `import d, {x} from 'm'; d(x);`)
	wantAll(t, got, `require("m").default`, "__esm0.x")

	// Default + namespace in one statement.
	got = desugared(t, `import d, * as ns from 'm'; d(ns);`)
	wantAll(t, got, `require("m").default`, `ns = require("m");`)
}

func TestImportShadowedBindingStaysSnapshot(t *testing.T) {
	// The imported name is also a function parameter somewhere in the
	// module, so use-site rewriting would change meaning; the import must
	// keep the snapshot desugaring.
	got := desugared(t, `import {a} from 'm';
function f(a) { return a; }
g(a);`)
	wantAll(t, got, `var a = require("m").a;`, "g(a)")
	wantNone(t, got, "__esm0")
}

func TestExportDesugarForms(t *testing.T) {
	// export function: declaration stays hoistable, plus exports.f = f.
	wantAll(t, desugared(t, `export function f() { return 1; }`),
		"function f()", "(exports.f = f);")

	// export var with a live binding: the local declaration collapses into
	// exports.x, and every later use reads/writes through exports.
	got := desugared(t, `export var x = 1;
function bump() { x = x + 1; }
use(x);`)
	wantAll(t, got, "(exports.x = 1);", "(exports.x = (exports.x + 1))", "use(exports.x)")
	wantNone(t, got, "var x =")

	// export var whose name is redeclared elsewhere keeps the snapshot.
	got = desugared(t, `export var y = 2;
function f(y) { return y; }`)
	wantAll(t, got, "var y = 2;", "(exports.y = y);")

	// Multiple declarators in one export statement, mixed liveness.
	got = desugared(t, `export var p = 1, q = 2;
function f(q) { return q; }
use(p);`)
	wantAll(t, got, "(exports.p = 1);", "var q = 2;", "(exports.q = q);", "use(exports.p)")

	// export default expression / function / class.
	wantAll(t, desugared(t, `export default 42;`), "(exports.default = 42);")
	wantAll(t, desugared(t, `export default function () { return 1; };`), "(exports.default = (function()")
	wantAll(t, desugared(t, `var v = 3; export default v;`), "(exports.default = v);")

	// export {a, b as c}: live re-exports become defineProperty getters.
	got = desugared(t, `var a = 1; var b = 2; export {a, b as c};`)
	wantAll(t, got,
		`Object.defineProperty(exports, "a"`, "return a;",
		`Object.defineProperty(exports, "c"`, "return b;")
}

func TestExportUninitializedVar(t *testing.T) {
	// A live exported declarator without an initializer exports undefined.
	got := desugared(t, `export var x;
set(x);`)
	wantAll(t, got, "(exports.x = undefined);", "set(exports.x)")
}

func TestReExportThroughImportIsLive(t *testing.T) {
	// import {a} then export {a}: after the live-binding rewrite the getter
	// body reads through the import's module object, so the re-export
	// chain observes mutations in the origin module.
	got := desugared(t, `import {a} from 'm'; export {a};`)
	wantAll(t, got,
		`var __esm0 = require("m");`,
		"return __esm0.a;")
}

func TestESMRewriteCoversExpressionForms(t *testing.T) {
	// One live import used from every expression position the rewriter
	// handles; each use must read through the module object.
	got := desugared(t, `import {v} from 'm';
var arr = [v, v + 1];
var o = {k: v};
var t = `+"`x${v}y`"+`;
var cond = v ? v : v;
var neg = -v;
var call = f(v)(v);
var mem = o[v].p;
var arrow = () => v;
for (var i = v; i < v; i++) { use(v); }
for (var k in v) { use(v); }
while (v) { break; }
do { } while (v);
switch (v) { case v: use(v); break; default: use(v); }
try { use(v); } catch (e) { use(v); } finally { use(v); }
if (v) { use(v); } else { use(v); }
throw v;`)
	if n := strings.Count(got, "__esm0.v"); n < 25 {
		t.Errorf("expected every use rewritten through __esm0.v, found only %d:\n%s", n, got)
	}
	// No bare identifier use of v may survive outside its declaration.
	for _, line := range strings.Split(got, "\n") {
		if strings.Contains(line, "var __esm0") {
			continue
		}
		stripped := strings.ReplaceAll(line, "__esm0.v", "")
		for i := 0; i+1 <= len(stripped); i++ {
			if stripped[i] == 'v' &&
				(i == 0 || !isWordByte(stripped[i-1])) &&
				(i+1 == len(stripped) || !isWordByte(stripped[i+1])) {
				t.Errorf("bare use of 'v' survived the rewrite in line %q", line)
			}
		}
	}
}

func isWordByte(b byte) bool {
	return b == '_' || b == '$' ||
		('a' <= b && b <= 'z') || ('A' <= b && b <= 'Z') || ('0' <= b && b <= '9')
}

func TestESMRoundTripStable(t *testing.T) {
	// The printed desugaring reparses to the same printed form — ESM
	// output obeys the same print/parse fixpoint as the core grammar.
	srcs := []string{
		`import {a, b as c} from 'm'; f(a, c);`,
		`import * as ns from 'm'; ns.go();`,
		`export var x = 1; function bump() { x = x + 1; }`,
		`var a = 1; export {a, a as alias};`,
		`export default function () { return 7; };`,
	}
	for _, src := range srcs {
		out1 := desugared(t, src)
		p2, err := Parse("test.js", out1)
		if err != nil {
			t.Errorf("reparse of desugared output failed: %v\noriginal: %s\nprinted:\n%s", err, src, out1)
			continue
		}
		if out2 := ast.Print(p2); out1 != out2 {
			t.Errorf("desugared print not stable for %q:\nfirst:\n%s\nsecond:\n%s", src, out1, out2)
		}
	}
}

func TestESMSyntaxErrors(t *testing.T) {
	parseErr(t, `import * from 'm';`)          // missing "as"
	parseErr(t, `import {a} 'm';`)             // missing "from"
	parseErr(t, `import {a} from 42;`)         // non-string specifier
	parseErr(t, `export while (1) { break; }`) // unsupported export declaration
}

// TestImportExportAsPlainIdentifiers: "import" and "export" are not
// reserved words in this lexer; when not followed by module syntax they
// must keep parsing as ordinary identifiers.
func TestImportExportAsPlainIdentifiers(t *testing.T) {
	got := desugared(t, `var import_ = 1; export_(import_); var x = export_ + 1;`)
	wantAll(t, got, "export_(import_)")
	got = desugared(t, `import.meta;`)
	wantNone(t, got, "require")
}
