package parser

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/ast"
	"repro/internal/testgen"
)

// TestGeneratedProgramRoundTrip: for generated programs P,
// Print(parse(P)) reparses, and printing is a fixpoint:
// Print(parse(Print(parse(P)))) == Print(parse(P)).
func TestGeneratedProgramRoundTrip(t *testing.T) {
	for seed := uint64(0); seed < 150; seed++ {
		src := testgen.New(seed).Program()
		p1, err := Parse("gen.js", src)
		if err != nil {
			t.Fatalf("seed %d: generated program failed to parse: %v\n%s", seed, err, src)
		}
		out1 := ast.Print(p1)
		p2, err := Parse("gen.js", out1)
		if err != nil {
			t.Fatalf("seed %d: printed output failed to reparse: %v\noriginal:\n%s\nprinted:\n%s",
				seed, err, src, out1)
		}
		out2 := ast.Print(p2)
		if out1 != out2 {
			t.Fatalf("seed %d: printing is not a fixpoint\nfirst:\n%s\nsecond:\n%s", seed, out1, out2)
		}
	}
}

// TestParseNeverPanics: the parser returns errors, never panics, for
// arbitrary input strings.
func TestParseNeverPanics(t *testing.T) {
	f := func(src string) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				t.Logf("panic on input %q: %v", src, r)
				ok = false
			}
		}()
		_, _ = Parse("fuzz.js", src)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
	// Adversarial fixed inputs.
	for _, src := range []string{
		"", ";", "{", "}", "((((", "))))", "var", "var =", "function",
		"function (", "a.", "a[", "a(", "=>", "...", "`${", "`${}`",
		"/", "/unterminated", "'", "\"", "0x", "1..2", "new", "new.new",
		"return", "throw", "try {}", "switch", "switch (x) { case }",
		"a ? b", "a ?? ", "obj[key] =", "for (", "for (;;", "do {} while",
		"\\", "\x00", "€", strings.Repeat("(", 2000), strings.Repeat("{", 2000),
	} {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Errorf("panic on %q: %v", src, r)
				}
			}()
			_, _ = Parse("fuzz.js", src)
		}()
	}
}

// TestGeneratedProgramsExecutable: generated programs must also survive the
// AST walkers (Functions/CallSites collect without panicking and with
// consistent counts after a print round-trip).
func TestGeneratedProgramWalkers(t *testing.T) {
	for seed := uint64(0); seed < 60; seed++ {
		src := testgen.New(seed*104729 + 3).Program()
		p1, err := Parse("gen.js", src)
		if err != nil {
			t.Fatal(err)
		}
		p2, err := Parse("gen.js", ast.Print(p1))
		if err != nil {
			t.Fatal(err)
		}
		if len(ast.Functions(p1)) != len(ast.Functions(p2)) {
			t.Fatalf("seed %d: function count changed across round-trip", seed)
		}
		if len(ast.CallSites(p1)) != len(ast.CallSites(p2)) {
			t.Fatalf("seed %d: call-site count changed across round-trip", seed)
		}
	}
}
