package parser

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/lexer"
	"repro/internal/loc"
	"repro/internal/testgen"
)

// TestCatchBailoutWrapsNonBailoutPanics pins the recovery contract of
// catchBailout: a panic that is not the parser's own bailout value — i.e. a
// parser bug such as an out-of-range token access — must surface as a
// *Error carrying the file and the position the parser had reached, not
// unwind out of Parse. (The old behavior rethrew such panics, so one buggy
// input could crash a whole corpus run.)
func TestCatchBailoutWrapsNonBailoutPanics(t *testing.T) {
	// A parser with no tokens (no EOF sentinel): peek() indexes out of
	// range, the canonical shape of an internal parser bug.
	run := func() (err error) {
		p := &parser{file: "/buggy.js"}
		defer p.catchBailout(&err)
		p.statement()
		return err
	}
	err := run()
	if err == nil {
		t.Fatal("expected an error from the panicking parser, got nil")
	}
	var perr *Error
	if !errors.As(err, &perr) {
		t.Fatalf("panic surfaced as %T (%v), want *parser.Error", err, err)
	}
	if perr.Loc.File != "/buggy.js" {
		t.Errorf("error location file = %q, want /buggy.js", perr.Loc.File)
	}
	if !strings.Contains(perr.Msg, "internal parser panic") {
		t.Errorf("error message %q does not mark the internal panic", perr.Msg)
	}
}

// TestCatchBailoutKeepsTokenPosition checks that when tokens exist, the
// wrapped error points at the token the parser was stuck on.
func TestCatchBailoutKeepsTokenPosition(t *testing.T) {
	toks, lerr := lexer.New("/pos.js", "a b").All()
	if lerr != nil {
		t.Fatal(lerr)
	}
	run := func() (err error) {
		p := &parser{file: "/pos.js", toks: toks, pos: 1}
		defer p.catchBailout(&err)
		panic("synthetic parser bug")
	}
	err := run()
	var perr *Error
	if !errors.As(err, &perr) {
		t.Fatalf("got %T (%v), want *parser.Error", err, err)
	}
	want := loc.Loc{File: "/pos.js", Line: 1, Col: 3} // token "b"
	if perr.Loc != want {
		t.Errorf("error location = %v, want %v", perr.Loc, want)
	}
	if !strings.Contains(perr.Msg, "synthetic parser bug") {
		t.Errorf("error message %q does not carry the panic value", perr.Msg)
	}
}

// TestParseTotalOnMutatedInputs is the fuzz-corpus regression harness: the
// corrupt/truncated module sources the chaos harness injects (and every cut
// of generated corpus programs) must produce a clean error or a program —
// never a panic escaping Parse. Run with small seeds in -short mode.
func TestParseTotalOnMutatedInputs(t *testing.T) {
	seeds := uint64(60)
	if testing.Short() {
		seeds = 10
	}
	check := func(src string) {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("Parse panicked on %q: %v", src, r)
			}
		}()
		prog, err := Parse("/m.js", src)
		if err != nil {
			var perr *Error
			if !errors.As(err, &perr) && !errors.As(err, new(*lexer.Error)) {
				t.Fatalf("Parse(%q) returned %T (%v), want *parser.Error or *lexer.Error", src, err, err)
			}
		} else if prog == nil {
			t.Fatalf("Parse(%q) returned nil program and nil error", src)
		}
	}
	// Hand-picked nasty fragments: unterminated constructs, stray closers,
	// template/regex edges, the chaos harness's own corruption patterns.
	for _, src := range []string{
		"", "((", ")", "}", "]", "`${", "`${a", "case 1:", "a?.", "a?b",
		"function", "function f(", "class C extends {", "new", "...x",
		"var x = @#$%^&(((", "x[", "({get:})", "for(;;", "do{}while",
		"try{", "throw", "a=>", "({...})", "switch(x){case", "/x/g/",
	} {
		check(src)
	}
	for seed := uint64(0); seed < seeds; seed++ {
		spec := testgen.GenProject(seed)
		for _, src := range spec.Files {
			for cut := 0; cut < len(src); cut += 7 {
				check(src[:cut])
				check(src[:cut] + "\n@#$%^&(((\n" + src[cut:])
				check(src[:cut] + "\n((")
			}
		}
	}
}
