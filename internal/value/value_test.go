package value

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTypeof(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Undefined{}, "undefined"},
		{Null{}, "object"},
		{Bool(true), "boolean"},
		{Number(1), "number"},
		{String("x"), "string"},
		{NewObject(nil), "object"},
		{NewFunction(nil, &FuncData{Name: "f"}), "function"},
	}
	for _, c := range cases {
		if got := c.v.Type(); got != c.want {
			t.Errorf("Type(%v) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestToBool(t *testing.T) {
	truthy := []Value{Bool(true), Number(1), Number(-1), String("a"), NewObject(nil), NewArray(nil, nil)}
	falsy := []Value{Undefined{}, Null{}, Bool(false), Number(0), Number(math.NaN()), String("")}
	for _, v := range truthy {
		if !ToBool(v) {
			t.Errorf("ToBool(%v) = false, want true", v)
		}
	}
	for _, v := range falsy {
		if ToBool(v) {
			t.Errorf("ToBool(%v) = true, want false", v)
		}
	}
}

func TestToNumber(t *testing.T) {
	cases := []struct {
		v    Value
		want float64
	}{
		{Number(3.5), 3.5},
		{Bool(true), 1},
		{Bool(false), 0},
		{Null{}, 0},
		{String("42"), 42},
		{String("  7 "), 7},
		{String(""), 0},
		{String("0x10"), 16},
	}
	for _, c := range cases {
		if got := ToNumber(c.v); got != c.want {
			t.Errorf("ToNumber(%v) = %v, want %v", c.v, got, c.want)
		}
	}
	if !math.IsNaN(ToNumber(Undefined{})) {
		t.Error("ToNumber(undefined) must be NaN")
	}
	if !math.IsNaN(ToNumber(String("abc"))) {
		t.Error("ToNumber('abc') must be NaN")
	}
	arr := NewArray(nil, []Value{Number(9)})
	if ToNumber(arr) != 9 {
		t.Error("ToNumber([9]) must be 9")
	}
}

func TestToString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Undefined{}, "undefined"},
		{Null{}, "null"},
		{Bool(true), "true"},
		{Number(42), "42"},
		{Number(3.5), "3.5"},
		{Number(math.NaN()), "NaN"},
		{Number(math.Inf(1)), "Infinity"},
		{String("s"), "s"},
		{NewObject(nil), "[object Object]"},
		{NewArray(nil, []Value{Number(1), Number(2)}), "1,2"},
		{NewArray(nil, []Value{Undefined{}, Null{}, Number(3)}), ",,3"},
	}
	for _, c := range cases {
		if got := ToString(c.v); got != c.want {
			t.Errorf("ToString = %q, want %q", got, c.want)
		}
	}
}

func TestStrictEquals(t *testing.T) {
	o := NewObject(nil)
	cases := []struct {
		a, b Value
		want bool
	}{
		{Number(1), Number(1), true},
		{Number(1), String("1"), false},
		{String("a"), String("a"), true},
		{Undefined{}, Undefined{}, true},
		{Null{}, Undefined{}, false},
		{o, o, true},
		{o, NewObject(nil), false},
		{Number(math.NaN()), Number(math.NaN()), false},
	}
	for _, c := range cases {
		if got := StrictEquals(c.a, c.b); got != c.want {
			t.Errorf("StrictEquals(%v, %v) = %v", c.a, c.b, got)
		}
	}
}

func TestLooseEquals(t *testing.T) {
	cases := []struct {
		a, b Value
		want bool
	}{
		{Number(1), String("1"), true},
		{Bool(true), Number(1), true},
		{Null{}, Undefined{}, true},
		{Null{}, Number(0), false},
		{String(""), Number(0), true},
		{NewArray(nil, []Value{Number(1)}), Number(1), true},
	}
	for _, c := range cases {
		if got := LooseEquals(c.a, c.b); got != c.want {
			t.Errorf("LooseEquals(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestLooseEqualsSymmetric(t *testing.T) {
	vals := []Value{
		Undefined{}, Null{}, Bool(true), Bool(false), Number(0), Number(1),
		String(""), String("1"), String("x"), NewObject(nil),
		NewArray(nil, []Value{Number(1)}),
	}
	for _, a := range vals {
		for _, b := range vals {
			if LooseEquals(a, b) != LooseEquals(b, a) {
				t.Errorf("LooseEquals not symmetric for %v, %v", a, b)
			}
		}
	}
}

func TestObjectProperties(t *testing.T) {
	o := NewObject(nil)
	o.Set("a", Number(1))
	o.Set("b", Number(2))
	o.Set("a", Number(3)) // overwrite keeps insertion order
	if got := o.OwnKeys(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("OwnKeys = %v", got)
	}
	p := o.GetOwn("a")
	if p == nil || p.Value != Value(Number(3)) {
		t.Errorf("a = %+v", p)
	}
	if !o.Delete("a") || o.HasOwn("a") {
		t.Error("delete failed")
	}
	if o.Delete("zzz") {
		t.Error("deleting a missing key must report false")
	}
	if got := o.OwnKeys(); len(got) != 1 || got[0] != "b" {
		t.Errorf("OwnKeys after delete = %v", got)
	}
}

func TestPrototypeChain(t *testing.T) {
	base := NewObject(nil)
	base.Set("inherited", String("yes"))
	child := NewObject(base)
	child.Set("own", String("mine"))

	p, owner := child.Lookup("inherited")
	if p == nil || owner != base {
		t.Error("prototype lookup failed")
	}
	if !child.Has("inherited") || child.HasOwn("inherited") {
		t.Error("Has/HasOwn confusion")
	}
	// Shadowing.
	child.Set("inherited", String("shadowed"))
	p, owner = child.Lookup("inherited")
	if owner != child || p.Value != Value(String("shadowed")) {
		t.Error("shadowing failed")
	}
	if bp := base.GetOwn("inherited"); bp.Value != Value(String("yes")) {
		t.Error("write leaked to prototype")
	}
}

func TestArraySemantics(t *testing.T) {
	a := NewArray(nil, []Value{Number(10), Number(20)})
	if p := a.GetOwn("length"); p == nil || p.Value != Value(Number(2)) {
		t.Error("length wrong")
	}
	if p := a.GetOwn("1"); p == nil || p.Value != Value(Number(20)) {
		t.Error("index read wrong")
	}
	a.Set("3", Number(40)) // extends with a hole
	if len(a.Elems) != 4 {
		t.Errorf("len = %d", len(a.Elems))
	}
	if _, isU := a.Elems[2].(Undefined); !isU {
		t.Error("hole should be undefined")
	}
	a.Set("length", Number(1))
	if len(a.Elems) != 1 {
		t.Error("length truncation failed")
	}
	// Non-index keys live in the property table.
	a.Set("tag", String("t"))
	if p := a.GetOwn("tag"); p == nil || p.Value != Value(String("t")) {
		t.Error("non-index property lost")
	}
	keys := a.EnumerableKeys()
	if len(keys) != 2 || keys[0] != "0" || keys[1] != "tag" {
		t.Errorf("keys = %v", keys)
	}
}

func TestEnumerability(t *testing.T) {
	o := NewObject(nil)
	o.Set("visible", Number(1))
	o.DefineProp("hidden", &Prop{Value: Number(2), Enumerable: false})
	keys := o.EnumerableKeys()
	if len(keys) != 1 || keys[0] != "visible" {
		t.Errorf("enumerable keys = %v", keys)
	}
	own := o.OwnKeys()
	if len(own) != 2 {
		t.Errorf("own keys = %v", own)
	}
}

func TestScopes(t *testing.T) {
	outer := NewScope(nil)
	outer.Declare("x", Number(1))
	inner := NewScope(outer)
	inner.Declare("y", Number(2))

	if v, ok := inner.Get("x"); !ok || v != Value(Number(1)) {
		t.Error("outer lookup failed")
	}
	if _, ok := outer.Get("y"); ok {
		t.Error("inner binding leaked out")
	}
	// Assignment through the chain mutates the outer cell (closures).
	if !inner.SetExisting("x", Number(9)) {
		t.Error("SetExisting failed")
	}
	if v, _ := outer.Get("x"); v != Value(Number(9)) {
		t.Error("cell not shared")
	}
	// Shadowing.
	inner.Declare("x", Number(100))
	if v, _ := inner.Get("x"); v != Value(Number(100)) {
		t.Error("shadow failed")
	}
	if v, _ := outer.Get("x"); v != Value(Number(9)) {
		t.Error("shadow overwrote outer")
	}
	if outer.SetExisting("nope", Number(1)) {
		t.Error("SetExisting on unbound name must fail")
	}
	if !inner.HasLocal("x") || inner.HasLocal("nope") {
		t.Error("HasLocal wrong")
	}
}

func TestFormatNumber(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		42:      "42",
		-3:      "-3",
		3.5:     "3.5",
		1e21:    "1e+21",
		2.5e-07: "2.5e-07",
	}
	for f, want := range cases {
		if got := FormatNumber(f); got != want {
			t.Errorf("FormatNumber(%v) = %q, want %q", f, got, want)
		}
	}
}

func TestStrictEqualsReflexiveForNonNaN(t *testing.T) {
	f := func(n float64, s string, b bool) bool {
		if math.IsNaN(n) {
			return true
		}
		return StrictEquals(Number(n), Number(n)) &&
			StrictEquals(String(s), String(s)) &&
			StrictEquals(Bool(b), Bool(b))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSetGetRoundTrip(t *testing.T) {
	f := func(key string, n float64) bool {
		o := NewObject(nil)
		o.Set(key, Number(n))
		p := o.GetOwn(key)
		if p == nil {
			return false
		}
		got, ok := p.Value.(Number)
		if !ok {
			return false
		}
		return float64(got) == n || (math.IsNaN(float64(got)) && math.IsNaN(n))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInspect(t *testing.T) {
	arr := NewArray(nil, []Value{Number(1), String("two")})
	if got := Inspect(arr); got != "[ 1, 'two' ]" {
		t.Errorf("Inspect(array) = %q", got)
	}
	o := NewObject(nil)
	o.Set("k", Number(7))
	if got := Inspect(o); got != "{ k: 7 }" {
		t.Errorf("Inspect(object) = %q", got)
	}
	fn := NewFunction(nil, &FuncData{Name: "fx"})
	if got := Inspect(fn); got != "[Function: fx]" {
		t.Errorf("Inspect(fn) = %q", got)
	}
}
