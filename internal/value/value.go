// Package value defines the runtime value model of the JavaScript subset:
// primitives, objects with prototype chains and property descriptors,
// arrays, functions (closures and natives), regular expressions, and the
// special proxy value p* used by approximate interpretation to stand for
// unknown values.
package value

import (
	"fmt"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"repro/internal/ast"
	"repro/internal/loc"
)

// Value is a JavaScript runtime value.
type Value interface {
	Type() string // result of the typeof operator
}

// Undefined is the undefined value.
type Undefined struct{}

// Null is the null value.
type Null struct{}

// Bool is a boolean value.
type Bool bool

// Number is a numeric value (float64, as in JavaScript).
type Number float64

// String is a string value.
type String string

// Type implements Value.
func (Undefined) Type() string { return "undefined" }

// Type implements Value.
func (Null) Type() string { return "object" }

// Type implements Value.
func (Bool) Type() string { return "boolean" }

// Type implements Value.
func (Number) Type() string { return "number" }

// Type implements Value.
func (String) Type() string { return "string" }

// Type implements Value.
func (o *Object) Type() string {
	if o.Callable() {
		return "function"
	}
	return "object"
}

// Class names for the object kinds this runtime distinguishes.
const (
	ClassObject   = "Object"
	ClassArray    = "Array"
	ClassFunction = "Function"
	ClassError    = "Error"
	ClassRegExp   = "RegExp"
	ClassProxy    = "Proxy" // the approximate interpreter's p*
)

// Prop is a property slot: either a data property (Value) or an accessor
// (Getter/Setter).
type Prop struct {
	Value      Value
	Getter     *Object
	Setter     *Object
	Enumerable bool
	Writable   bool
}

// IsAccessor reports whether the slot is an accessor property.
func (p *Prop) IsAccessor() bool { return p.Getter != nil || p.Setter != nil }

// Object is a JavaScript object: a mutable dictionary with a prototype
// link. Functions, arrays, errors, regexps, and the proxy value are all
// Objects distinguished by Class.
type Object struct {
	Class string
	Proto *Object

	props map[string]*Prop
	keys  []string // insertion order of props

	// Elems is the element storage for Class == ClassArray.
	Elems []Value

	// Fn is non-nil for function objects.
	Fn *FuncData

	// Regex is non-nil for ClassRegExp objects.
	Regex      *regexp.Regexp
	RegexSrc   string
	RegexFlags string

	// Alloc is the allocation site (loc in the paper). Invalid for objects
	// created by code whose locations are meaningless (eval) or by skipped
	// operations.
	Alloc loc.Loc

	// ProxyTarget, for proxy-wrapped receivers (see the paper's static
	// property write rule), delegates absent-property reads to the global
	// proxy. Nil for ordinary objects.
	ProxyTarget *Object

	// HostData carries engine-internal state for builtin object kinds
	// (Map/Set entries, Promise state, …).
	HostData any
}

// FuncData carries the callable state of a function object.
type FuncData struct {
	Name   string
	Decl   *ast.FuncLit // nil for natives and bound functions
	Env    *Scope       // closure environment; nil for natives
	Native NativeFunc   // non-nil for natives
	Module string       // module path in which the definition was evaluated

	// Bound function state (Function.prototype.bind).
	BoundTarget *Object
	BoundThis   Value
	BoundArgs   []Value

	// ArrowThis is set for arrow functions, which capture this lexically.
	ArrowThis Value
	IsArrow   bool
}

// Host is the set of engine operations available to native functions. The
// interpreter implements it; defining it here breaks the package cycle
// between the value model and the evaluator.
type Host interface {
	// CallFunction invokes fn with the given receiver and arguments.
	CallFunction(fn *Object, this Value, args []Value) (Value, error)
	// NewError creates an error object of the given name ("TypeError", …).
	NewError(name, msg string) *Object
	// ThrowError creates and throws an error (returns the throw as a Go error).
	ThrowError(name, msg string) error
	// Global returns the global object.
	Global() *Object
	// EvalSource parses and runs source code in the current module context
	// (the implementation behind eval and the Function constructor).
	EvalSource(src string) (Value, error)
}

// NativeFunc is the Go implementation of a built-in function.
type NativeFunc func(h Host, this Value, args []Value) (Value, error)

// NewObject returns a plain object with the given prototype.
func NewObject(proto *Object) *Object {
	return &Object{Class: ClassObject, Proto: proto, props: map[string]*Prop{}}
}

// NewArray returns an array object with the given elements and prototype.
func NewArray(proto *Object, elems []Value) *Object {
	return &Object{Class: ClassArray, Proto: proto, props: map[string]*Prop{}, Elems: elems}
}

// NewFunction returns a function object for fn with the given prototype.
func NewFunction(proto *Object, fn *FuncData) *Object {
	return &Object{Class: ClassFunction, Proto: proto, props: map[string]*Prop{}, Fn: fn}
}

// NewNative returns a native function object.
func NewNative(proto *Object, name string, fn NativeFunc) *Object {
	return NewFunction(proto, &FuncData{Name: name, Native: fn})
}

// Callable reports whether o can be invoked.
func (o *Object) Callable() bool { return o != nil && o.Fn != nil }

// IsProxy reports whether o is the approximate interpreter's proxy value
// p* (or a wrapper that delegates to it).
func (o *Object) IsProxy() bool { return o != nil && o.Class == ClassProxy }

// --------------------------------------------------------------- properties

// normIndex converts an array index key to an int, returning ok=false for
// non-index keys.
func normIndex(key string) (int, bool) {
	if key == "" {
		return 0, false
	}
	for i := 0; i < len(key); i++ {
		if key[i] < '0' || key[i] > '9' {
			return 0, false
		}
	}
	n, err := strconv.Atoi(key)
	if err != nil {
		return 0, false
	}
	return n, true
}

// GetOwn returns the own property slot for key, or nil.
func (o *Object) GetOwn(key string) *Prop {
	if o.Class == ClassArray {
		if key == "length" {
			return &Prop{Value: Number(len(o.Elems)), Writable: true}
		}
		if i, ok := normIndex(key); ok {
			if i < len(o.Elems) {
				v := o.Elems[i]
				if v == nil {
					v = Undefined{}
				}
				return &Prop{Value: v, Enumerable: true, Writable: true}
			}
			return nil
		}
	}
	return o.props[key]
}

// Lookup finds the property slot for key along the prototype chain,
// returning the slot and the object that owns it (nil, nil if absent).
func (o *Object) Lookup(key string) (*Prop, *Object) {
	for cur := o; cur != nil; cur = cur.Proto {
		if p := cur.GetOwn(key); p != nil {
			return p, cur
		}
	}
	return nil, nil
}

// Has reports whether key is present on o or its prototype chain.
func (o *Object) Has(key string) bool {
	p, _ := o.Lookup(key)
	return p != nil
}

// HasOwn reports whether key is an own property of o.
func (o *Object) HasOwn(key string) bool { return o.GetOwn(key) != nil }

// Set assigns a data property, creating it as enumerable and writable if
// absent. Array index and length keys update element storage.
func (o *Object) Set(key string, v Value) {
	if o.Class == ClassArray {
		if key == "length" {
			if n, ok := toLength(v); ok {
				o.setLength(n)
				return
			}
		}
		if i, ok := normIndex(key); ok {
			for len(o.Elems) <= i {
				o.Elems = append(o.Elems, Undefined{})
			}
			o.Elems[i] = v
			return
		}
	}
	if p, found := o.props[key]; found {
		if !p.IsAccessor() {
			p.Value = v
			return
		}
		// Accessor without setter: silently ignored (non-strict semantics);
		// the evaluator handles setter invocation before calling Set.
		return
	}
	o.props[key] = &Prop{Value: v, Enumerable: true, Writable: true}
	o.keys = append(o.keys, key)
}

// DefineProp installs a property slot verbatim (Object.defineProperty).
func (o *Object) DefineProp(key string, p *Prop) {
	if o.Class == ClassArray {
		if i, ok := normIndex(key); ok && !p.IsAccessor() {
			for len(o.Elems) <= i {
				o.Elems = append(o.Elems, Undefined{})
			}
			o.Elems[i] = p.Value
			return
		}
	}
	if _, found := o.props[key]; !found {
		o.keys = append(o.keys, key)
	}
	o.props[key] = p
}

// Delete removes an own property, reporting whether anything was removed.
func (o *Object) Delete(key string) bool {
	if o.Class == ClassArray {
		if i, ok := normIndex(key); ok && i < len(o.Elems) {
			o.Elems[i] = Undefined{}
			return true
		}
	}
	if _, found := o.props[key]; !found {
		return false
	}
	delete(o.props, key)
	for i, k := range o.keys {
		if k == key {
			o.keys = append(o.keys[:i], o.keys[i+1:]...)
			break
		}
	}
	return true
}

// OwnKeys returns the own enumerable-or-not property keys in insertion
// order; for arrays, index keys come first.
func (o *Object) OwnKeys() []string {
	var keys []string
	if o.Class == ClassArray {
		for i := range o.Elems {
			keys = append(keys, strconv.Itoa(i))
		}
	}
	keys = append(keys, o.keys...)
	return keys
}

// EnumerableKeys returns the own enumerable property keys in iteration
// order (for-in and Object.keys).
func (o *Object) EnumerableKeys() []string {
	var keys []string
	if o.Class == ClassArray {
		for i := range o.Elems {
			keys = append(keys, strconv.Itoa(i))
		}
	}
	for _, k := range o.keys {
		if p := o.props[k]; p != nil && p.Enumerable {
			keys = append(keys, k)
		}
	}
	return keys
}

func (o *Object) setLength(n int) {
	switch {
	case n < len(o.Elems):
		o.Elems = o.Elems[:n]
	default:
		for len(o.Elems) < n {
			o.Elems = append(o.Elems, Undefined{})
		}
	}
}

func toLength(v Value) (int, bool) {
	n, ok := v.(Number)
	if !ok || float64(n) < 0 || float64(n) != float64(int(n)) {
		return 0, false
	}
	return int(n), true
}

// -------------------------------------------------------------- conversions

// ToBool converts a value to a boolean per JavaScript truthiness.
func ToBool(v Value) bool {
	switch v := v.(type) {
	case Undefined, Null:
		return false
	case Bool:
		return bool(v)
	case Number:
		return v != 0 && v == v // false for 0 and NaN
	case String:
		return v != ""
	case *Object:
		return true
	}
	return false
}

// ToNumber converts a value to a number per (simplified) JavaScript rules.
// Objects convert via their string representation; NaN on failure.
func ToNumber(v Value) float64 {
	switch v := v.(type) {
	case Undefined:
		return nan()
	case Null:
		return 0
	case Bool:
		if v {
			return 1
		}
		return 0
	case Number:
		return float64(v)
	case String:
		s := strings.TrimSpace(string(v))
		if s == "" {
			return 0
		}
		if n, err := strconv.ParseFloat(s, 64); err == nil {
			return n
		}
		if strings.HasPrefix(s, "0x") || strings.HasPrefix(s, "0X") {
			if n, err := strconv.ParseUint(s[2:], 16, 64); err == nil {
				return float64(n)
			}
		}
		return nan()
	case *Object:
		if v.Class == ClassArray {
			if len(v.Elems) == 0 {
				return 0
			}
			if len(v.Elems) == 1 {
				return ToNumber(v.Elems[0])
			}
		}
		return nan()
	}
	return nan()
}

func nan() float64 { return math.NaN() }

// ToString converts a value to a string per (simplified) JavaScript rules.
func ToString(v Value) string {
	switch v := v.(type) {
	case Undefined:
		return "undefined"
	case Null:
		return "null"
	case Bool:
		if v {
			return "true"
		}
		return "false"
	case Number:
		return FormatNumber(float64(v))
	case String:
		return string(v)
	case *Object:
		switch {
		case v.IsProxy():
			return "[proxy]"
		case v.Callable():
			name := v.Fn.Name
			if name == "" {
				name = "anonymous"
			}
			return "function " + name + "() { [native or user code] }"
		case v.Class == ClassArray:
			parts := make([]string, len(v.Elems))
			for i, e := range v.Elems {
				if e == nil {
					e = Undefined{}
				}
				if _, isU := e.(Undefined); isU {
					parts[i] = ""
				} else if _, isN := e.(Null); isN {
					parts[i] = ""
				} else {
					parts[i] = ToString(e)
				}
			}
			return strings.Join(parts, ",")
		case v.Class == ClassRegExp:
			return "/" + v.RegexSrc + "/" + v.RegexFlags
		case v.Class == ClassError:
			name, msg := "Error", ""
			if p := v.GetOwn("name"); p != nil && !p.IsAccessor() {
				name = ToString(p.Value)
			}
			if p := v.GetOwn("message"); p != nil && !p.IsAccessor() {
				msg = ToString(p.Value)
			}
			if msg == "" {
				return name
			}
			return name + ": " + msg
		default:
			return "[object Object]"
		}
	}
	return "undefined"
}

// FormatNumber renders a float64 the way JavaScript's ToString does for the
// common cases (integers without decimal point, NaN, Infinity).
func FormatNumber(f float64) string {
	switch {
	case math.IsNaN(f):
		return "NaN"
	case math.IsInf(f, 1):
		return "Infinity"
	case math.IsInf(f, -1):
		return "-Infinity"
	case f == float64(int64(f)) && f >= -1e15 && f <= 1e15:
		return strconv.FormatInt(int64(f), 10)
	default:
		return strconv.FormatFloat(f, 'g', -1, 64)
	}
}

// StrictEquals implements ===.
func StrictEquals(a, b Value) bool {
	switch a := a.(type) {
	case Undefined:
		_, ok := b.(Undefined)
		return ok
	case Null:
		_, ok := b.(Null)
		return ok
	case Bool:
		bb, ok := b.(Bool)
		return ok && a == bb
	case Number:
		bn, ok := b.(Number)
		return ok && float64(a) == float64(bn)
	case String:
		bs, ok := b.(String)
		return ok && a == bs
	case *Object:
		bo, ok := b.(*Object)
		return ok && a == bo
	}
	return false
}

// LooseEquals implements == for the supported subset: same-type comparisons
// defer to ===; null == undefined; number/string/bool comparisons coerce to
// number; object-to-primitive comparisons coerce arrays via ToString.
func LooseEquals(a, b Value) bool {
	if sameType(a, b) {
		return StrictEquals(a, b)
	}
	_, aU := a.(Undefined)
	_, aN := a.(Null)
	_, bU := b.(Undefined)
	_, bN := b.(Null)
	if (aU || aN) && (bU || bN) {
		return true
	}
	if aU || aN || bU || bN {
		return false
	}
	ao, aIsObj := a.(*Object)
	bo, bIsObj := b.(*Object)
	switch {
	case aIsObj && !bIsObj:
		return LooseEquals(objToPrimitive(ao), b)
	case bIsObj && !aIsObj:
		return LooseEquals(a, objToPrimitive(bo))
	}
	return ToNumber(a) == ToNumber(b)
}

func objToPrimitive(o *Object) Value { return String(ToString(o)) }

func sameType(a, b Value) bool {
	switch a.(type) {
	case Undefined:
		_, ok := b.(Undefined)
		return ok
	case Null:
		_, ok := b.(Null)
		return ok
	case Bool:
		_, ok := b.(Bool)
		return ok
	case Number:
		_, ok := b.(Number)
		return ok
	case String:
		_, ok := b.(String)
		return ok
	case *Object:
		_, ok := b.(*Object)
		return ok
	}
	return false
}

// PropertyKey converts a value used in a computed property access to the
// property name string.
func PropertyKey(v Value) string { return ToString(v) }

// Inspect renders a value for console output: strings unquoted at top
// level, arrays and objects with structure, depth-limited.
func Inspect(v Value) string { return inspect(v, 0, false) }

func inspect(v Value, depth int, quote bool) string {
	if depth > 3 {
		return "…"
	}
	switch v := v.(type) {
	case String:
		if quote {
			return "'" + string(v) + "'"
		}
		return string(v)
	case *Object:
		switch {
		case v.IsProxy():
			return "[proxy]"
		case v.Callable():
			if v.Fn.Name != "" {
				return "[Function: " + v.Fn.Name + "]"
			}
			return "[Function (anonymous)]"
		case v.Class == ClassArray:
			parts := make([]string, len(v.Elems))
			for i, e := range v.Elems {
				if e == nil {
					e = Undefined{}
				}
				parts[i] = inspect(e, depth+1, true)
			}
			return "[ " + strings.Join(parts, ", ") + " ]"
		case v.Class == ClassError:
			return ToString(v)
		case v.Class == ClassRegExp:
			return ToString(v)
		default:
			keys := v.EnumerableKeys()
			sort.Strings(keys)
			parts := make([]string, 0, len(keys))
			for _, k := range keys {
				p := v.GetOwn(k)
				if p == nil {
					continue
				}
				val := "…"
				if !p.IsAccessor() {
					val = inspect(p.Value, depth+1, true)
				} else {
					val = "[Getter/Setter]"
				}
				parts = append(parts, fmt.Sprintf("%s: %s", k, val))
			}
			return "{ " + strings.Join(parts, ", ") + " }"
		}
	default:
		return ToString(v)
	}
}

// ------------------------------------------------------------------- scopes

// Scope is a lexical environment: a chain of frames mapping names to
// shared value cells, so closures observe later mutations.
type Scope struct {
	vars   map[string]*Value
	parent *Scope
}

// NewScope returns a child scope of parent (parent may be nil for the
// global scope).
func NewScope(parent *Scope) *Scope {
	return &Scope{vars: map[string]*Value{}, parent: parent}
}

// Parent returns the enclosing scope (nil at the root).
func (s *Scope) Parent() *Scope { return s.parent }

// Declare introduces (or overwrites) name in this frame.
func (s *Scope) Declare(name string, v Value) {
	if cell, ok := s.vars[name]; ok {
		*cell = v
		return
	}
	cell := new(Value)
	*cell = v
	s.vars[name] = cell
}

// Cell returns the value cell for name, searching enclosing scopes.
func (s *Scope) Cell(name string) (*Value, bool) {
	for cur := s; cur != nil; cur = cur.parent {
		if cell, ok := cur.vars[name]; ok {
			return cell, true
		}
	}
	return nil, false
}

// Get returns the value of name, searching enclosing scopes.
func (s *Scope) Get(name string) (Value, bool) {
	cell, ok := s.Cell(name)
	if !ok {
		return nil, false
	}
	return *cell, true
}

// SetExisting assigns to an existing binding, reporting whether one was
// found.
func (s *Scope) SetExisting(name string, v Value) bool {
	cell, ok := s.Cell(name)
	if !ok {
		return false
	}
	*cell = v
	return true
}

// HasLocal reports whether name is bound in this frame (not parents).
func (s *Scope) HasLocal(name string) bool {
	_, ok := s.vars[name]
	return ok
}

// Names returns the names bound in this frame, sorted.
func (s *Scope) Names() []string {
	out := make([]string, 0, len(s.vars))
	for k := range s.vars {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
