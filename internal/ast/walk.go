package ast

// Walk traverses the tree rooted at n in depth-first pre-order, calling fn
// for every node. If fn returns false the node's children are skipped.
// Nil children are never visited.
func Walk(n Node, fn func(Node) bool) {
	if n == nil || !fn(n) {
		return
	}
	switch n := n.(type) {
	case *Program:
		walkStmts(n.Body, fn)
	case *VarDecl:
		for _, d := range n.Decls {
			walkExpr(d.Init, fn)
		}
	case *FuncDecl:
		Walk(n.Fn, fn)
	case *ExprStmt:
		walkExpr(n.X, fn)
	case *BlockStmt:
		walkStmts(n.Body, fn)
	case *IfStmt:
		walkExpr(n.Cond, fn)
		walkStmt(n.Then, fn)
		walkStmt(n.Else, fn)
	case *WhileStmt:
		walkExpr(n.Cond, fn)
		walkStmt(n.Body, fn)
	case *DoWhileStmt:
		walkStmt(n.Body, fn)
		walkExpr(n.Cond, fn)
	case *ForStmt:
		walkStmt(n.Init, fn)
		walkExpr(n.Cond, fn)
		walkExpr(n.Post, fn)
		walkStmt(n.Body, fn)
	case *ForInStmt:
		walkExpr(n.Obj, fn)
		walkStmt(n.Body, fn)
	case *ReturnStmt:
		walkExpr(n.X, fn)
	case *ThrowStmt:
		walkExpr(n.X, fn)
	case *TryStmt:
		walkStmt(n.Block, fn)
		walkStmt(n.Catch, fn)
		walkStmt(n.Finally, fn)
	case *SwitchStmt:
		walkExpr(n.Disc, fn)
		for _, c := range n.Cases {
			walkStmts(c.Body, fn)
		}
	case *TemplateLit:
		for _, e := range n.Exprs {
			walkExpr(e, fn)
		}
	case *ArrayLit:
		for _, e := range n.Elems {
			walkExpr(e, fn)
		}
	case *ObjectLit:
		for _, p := range n.Props {
			walkExpr(p.Computed, fn)
			walkExpr(p.Value, fn)
		}
	case *FuncLit:
		walkStmt(n.Body, fn)
		walkExpr(n.ExprBody, fn)
	case *CallExpr:
		walkExpr(n.Callee, fn)
		for _, a := range n.Args {
			walkExpr(a, fn)
		}
	case *NewExpr:
		walkExpr(n.Callee, fn)
		for _, a := range n.Args {
			walkExpr(a, fn)
		}
	case *MemberExpr:
		walkExpr(n.Obj, fn)
		walkExpr(n.PropExpr, fn)
	case *AssignExpr:
		walkExpr(n.Target, fn)
		walkExpr(n.Value, fn)
	case *BinaryExpr:
		walkExpr(n.L, fn)
		walkExpr(n.R, fn)
	case *LogicalExpr:
		walkExpr(n.L, fn)
		walkExpr(n.R, fn)
	case *UnaryExpr:
		walkExpr(n.X, fn)
	case *UpdateExpr:
		walkExpr(n.X, fn)
	case *CondExpr:
		walkExpr(n.Cond, fn)
		walkExpr(n.Then, fn)
		walkExpr(n.Else, fn)
	case *SeqExpr:
		for _, e := range n.Exprs {
			walkExpr(e, fn)
		}
	case *SpreadExpr:
		walkExpr(n.X, fn)
	case *YieldExpr:
		walkExpr(n.X, fn)
	}
}

func walkStmts(ss []Stmt, fn func(Node) bool) {
	for _, s := range ss {
		walkStmt(s, fn)
	}
}

func walkStmt(s Stmt, fn func(Node) bool) {
	switch s := s.(type) {
	case nil:
		return
	case *BlockStmt:
		if s == nil {
			return
		}
		Walk(s, fn)
	default:
		Walk(s, fn)
	}
}

func walkExpr(e Expr, fn func(Node) bool) {
	if e == nil {
		return
	}
	Walk(e, fn)
}

// Functions returns every function definition in the tree, in source order,
// including nested functions.
func Functions(n Node) []*FuncLit {
	var out []*FuncLit
	Walk(n, func(n Node) bool {
		if f, ok := n.(*FuncLit); ok {
			out = append(out, f)
		}
		return true
	})
	return out
}

// CallSites returns every call expression in the tree, in source order.
// new-expressions are not included; use NewSites for those.
func CallSites(n Node) []*CallExpr {
	var out []*CallExpr
	Walk(n, func(n Node) bool {
		if c, ok := n.(*CallExpr); ok {
			out = append(out, c)
		}
		return true
	})
	return out
}

// NewSites returns every new-expression in the tree, in source order.
func NewSites(n Node) []*NewExpr {
	var out []*NewExpr
	Walk(n, func(n Node) bool {
		if c, ok := n.(*NewExpr); ok {
			out = append(out, c)
		}
		return true
	})
	return out
}
