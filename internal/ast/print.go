package ast

import (
	"fmt"
	"strconv"
	"strings"
)

// Print renders the tree as JavaScript source text.
//
// The output is canonical rather than faithful to the original layout:
// sub-expressions are fully parenthesized so that printing is independent
// of operator precedence, and statements are newline-separated with
// explicit semicolons. Print(parse(Print(n))) == Print(n) for all trees
// the parser produces, which the property tests rely on.
func Print(n Node) string {
	var p printer
	p.node(n)
	return p.sb.String()
}

type printer struct {
	sb     strings.Builder
	indent int
}

func (p *printer) ws() {
	for i := 0; i < p.indent; i++ {
		p.sb.WriteString("  ")
	}
}

func (p *printer) node(n Node) {
	switch n := n.(type) {
	case *Program:
		for _, s := range n.Body {
			p.stmt(s)
		}
	case Stmt:
		p.stmt(n)
	case Expr:
		p.expr(n)
	}
}

func (p *printer) stmt(s Stmt) {
	switch s := s.(type) {
	case *VarDecl:
		p.ws()
		p.sb.WriteString(string(s.Kind))
		p.sb.WriteByte(' ')
		for i, d := range s.Decls {
			if i > 0 {
				p.sb.WriteString(", ")
			}
			p.sb.WriteString(d.Name)
			if d.Init != nil {
				p.sb.WriteString(" = ")
				p.expr(d.Init)
			}
		}
		p.sb.WriteString(";\n")
	case *FuncDecl:
		p.ws()
		p.funcLit(s.Fn, true)
		p.sb.WriteByte('\n')
	case *ExprStmt:
		p.ws()
		p.expr(s.X)
		p.sb.WriteString(";\n")
	case *BlockStmt:
		p.ws()
		p.block(s)
		p.sb.WriteByte('\n')
	case *IfStmt:
		p.ws()
		p.sb.WriteString("if (")
		p.expr(s.Cond)
		p.sb.WriteString(")\n")
		p.nested(s.Then)
		if s.Else != nil {
			p.ws()
			p.sb.WriteString("else\n")
			p.nested(s.Else)
		}
	case *WhileStmt:
		p.ws()
		p.sb.WriteString("while (")
		p.expr(s.Cond)
		p.sb.WriteString(")\n")
		p.nested(s.Body)
	case *DoWhileStmt:
		p.ws()
		p.sb.WriteString("do\n")
		p.nested(s.Body)
		p.ws()
		p.sb.WriteString("while (")
		p.expr(s.Cond)
		p.sb.WriteString(");\n")
	case *ForStmt:
		p.ws()
		p.sb.WriteString("for (")
		switch init := s.Init.(type) {
		case nil:
		case *VarDecl:
			p.sb.WriteString(string(init.Kind))
			p.sb.WriteByte(' ')
			for i, d := range init.Decls {
				if i > 0 {
					p.sb.WriteString(", ")
				}
				p.sb.WriteString(d.Name)
				if d.Init != nil {
					p.sb.WriteString(" = ")
					p.expr(d.Init)
				}
			}
		case *ExprStmt:
			p.expr(init.X)
		}
		p.sb.WriteString("; ")
		if s.Cond != nil {
			p.expr(s.Cond)
		}
		p.sb.WriteString("; ")
		if s.Post != nil {
			p.expr(s.Post)
		}
		p.sb.WriteString(")\n")
		p.nested(s.Body)
	case *ForInStmt:
		p.ws()
		p.sb.WriteString("for (")
		if s.DeclKind != "" {
			p.sb.WriteString(string(s.DeclKind))
			p.sb.WriteByte(' ')
		}
		p.sb.WriteString(s.Name)
		if s.IsOf {
			p.sb.WriteString(" of ")
		} else {
			p.sb.WriteString(" in ")
		}
		p.expr(s.Obj)
		p.sb.WriteString(")\n")
		p.nested(s.Body)
	case *ReturnStmt:
		p.ws()
		p.sb.WriteString("return")
		if s.X != nil {
			p.sb.WriteByte(' ')
			p.expr(s.X)
		}
		p.sb.WriteString(";\n")
	case *BreakStmt:
		p.ws()
		p.sb.WriteString("break;\n")
	case *ContinueStmt:
		p.ws()
		p.sb.WriteString("continue;\n")
	case *ThrowStmt:
		p.ws()
		p.sb.WriteString("throw ")
		p.expr(s.X)
		p.sb.WriteString(";\n")
	case *TryStmt:
		p.ws()
		p.sb.WriteString("try ")
		p.block(s.Block)
		if s.Catch != nil {
			p.sb.WriteString(" catch ")
			if s.CatchParam != "" {
				p.sb.WriteByte('(')
				p.sb.WriteString(s.CatchParam)
				p.sb.WriteString(") ")
			}
			p.block(s.Catch)
		}
		if s.Finally != nil {
			p.sb.WriteString(" finally ")
			p.block(s.Finally)
		}
		p.sb.WriteByte('\n')
	case *SwitchStmt:
		p.ws()
		p.sb.WriteString("switch (")
		p.expr(s.Disc)
		p.sb.WriteString(") {\n")
		p.indent++
		for _, c := range s.Cases {
			p.ws()
			if c.Test == nil {
				p.sb.WriteString("default:\n")
			} else {
				p.sb.WriteString("case ")
				p.expr(c.Test)
				p.sb.WriteString(":\n")
			}
			p.indent++
			for _, st := range c.Body {
				p.stmt(st)
			}
			p.indent--
		}
		p.indent--
		p.ws()
		p.sb.WriteString("}\n")
	case *EmptyStmt:
		p.ws()
		p.sb.WriteString(";\n")
	default:
		panic(fmt.Sprintf("ast.Print: unknown statement %T", s))
	}
}

// nested prints a statement as the body of a control construct, always as a
// block so the output re-parses unambiguously.
func (p *printer) nested(s Stmt) {
	p.ws()
	if b, ok := s.(*BlockStmt); ok {
		p.block(b)
		p.sb.WriteByte('\n')
		return
	}
	p.sb.WriteString("{\n")
	p.indent++
	p.stmt(s)
	p.indent--
	p.ws()
	p.sb.WriteString("}\n")
}

func (p *printer) block(b *BlockStmt) {
	p.sb.WriteString("{\n")
	p.indent++
	for _, s := range b.Body {
		p.stmt(s)
	}
	p.indent--
	p.ws()
	p.sb.WriteByte('}')
}

func (p *printer) funcLit(f *FuncLit, decl bool) {
	if f.IsAsync {
		p.sb.WriteString("async ")
	}
	if f.IsArrow {
		p.sb.WriteByte('(')
		p.params(f)
		p.sb.WriteString(") => ")
		if f.ExprBody != nil {
			p.sb.WriteByte('(')
			p.expr(f.ExprBody)
			p.sb.WriteByte(')')
		} else {
			p.block(f.Body)
		}
		return
	}
	p.sb.WriteString("function")
	if f.IsGenerator {
		p.sb.WriteByte('*')
	}
	if f.Name != "" {
		p.sb.WriteByte(' ')
		p.sb.WriteString(f.Name)
	}
	p.sb.WriteByte('(')
	p.params(f)
	p.sb.WriteString(") ")
	p.block(f.Body)
	_ = decl
}

func (p *printer) params(f *FuncLit) {
	for i, name := range f.Params {
		if i > 0 {
			p.sb.WriteString(", ")
		}
		if i == f.RestIdx {
			p.sb.WriteString("...")
		}
		p.sb.WriteString(name)
	}
}

func (p *printer) expr(e Expr) {
	switch e := e.(type) {
	case *Ident:
		p.sb.WriteString(e.Name)
	case *NumberLit:
		p.sb.WriteString(strconv.FormatFloat(e.Value, 'g', -1, 64))
	case *StringLit:
		p.sb.WriteString(quoteJS(e.Value))
	case *BoolLit:
		if e.Value {
			p.sb.WriteString("true")
		} else {
			p.sb.WriteString("false")
		}
	case *NullLit:
		p.sb.WriteString("null")
	case *UndefinedLit:
		p.sb.WriteString("undefined")
	case *RegexLit:
		p.sb.WriteByte('/')
		p.sb.WriteString(e.Pattern)
		p.sb.WriteByte('/')
		p.sb.WriteString(e.Flags)
	case *TemplateLit:
		p.sb.WriteByte('`')
		for i, q := range e.Quasis {
			p.sb.WriteString(q)
			if i < len(e.Exprs) {
				p.sb.WriteString("${")
				p.expr(e.Exprs[i])
				p.sb.WriteByte('}')
			}
		}
		p.sb.WriteByte('`')
	case *ArrayLit:
		p.sb.WriteByte('[')
		for i, el := range e.Elems {
			if i > 0 {
				p.sb.WriteString(", ")
			}
			if el != nil {
				p.expr(el)
			}
		}
		p.sb.WriteByte(']')
	case *ObjectLit:
		p.sb.WriteString("({")
		for i, prop := range e.Props {
			if i > 0 {
				p.sb.WriteString(", ")
			}
			switch prop.Kind {
			case GetterProp:
				p.sb.WriteString("get ")
			case SetterProp:
				p.sb.WriteString("set ")
			}
			if prop.Computed != nil {
				p.sb.WriteByte('[')
				p.expr(prop.Computed)
				p.sb.WriteByte(']')
			} else if isIdentName(prop.Key) {
				p.sb.WriteString(prop.Key)
			} else {
				p.sb.WriteString(quoteJS(prop.Key))
			}
			if prop.Kind == NormalProp {
				p.sb.WriteString(": ")
				p.expr(prop.Value)
			} else {
				// accessor: print the function's parameter list and body
				f := prop.Value.(*FuncLit)
				p.sb.WriteByte('(')
				p.params(f)
				p.sb.WriteString(") ")
				p.block(f.Body)
			}
		}
		p.sb.WriteString("})")
	case *FuncLit:
		p.sb.WriteByte('(')
		p.funcLit(e, false)
		p.sb.WriteByte(')')
	case *CallExpr:
		p.expr(e.Callee)
		p.args(e.Args)
	case *NewExpr:
		p.sb.WriteString("new ")
		p.expr(e.Callee)
		p.args(e.Args)
	case *MemberExpr:
		p.expr(e.Obj)
		if e.Computed {
			p.sb.WriteByte('[')
			p.expr(e.PropExpr)
			p.sb.WriteByte(']')
		} else {
			p.sb.WriteByte('.')
			p.sb.WriteString(e.Prop)
		}
	case *AssignExpr:
		p.sb.WriteByte('(')
		p.expr(e.Target)
		p.sb.WriteByte(' ')
		p.sb.WriteString(e.Op)
		p.sb.WriteByte(' ')
		p.expr(e.Value)
		p.sb.WriteByte(')')
	case *BinaryExpr:
		p.sb.WriteByte('(')
		p.expr(e.L)
		p.sb.WriteByte(' ')
		p.sb.WriteString(e.Op)
		p.sb.WriteByte(' ')
		p.expr(e.R)
		p.sb.WriteByte(')')
	case *LogicalExpr:
		p.sb.WriteByte('(')
		p.expr(e.L)
		p.sb.WriteByte(' ')
		p.sb.WriteString(e.Op)
		p.sb.WriteByte(' ')
		p.expr(e.R)
		p.sb.WriteByte(')')
	case *UnaryExpr:
		p.sb.WriteByte('(')
		p.sb.WriteString(e.Op)
		if len(e.Op) > 1 { // typeof, void, delete
			p.sb.WriteByte(' ')
		}
		p.expr(e.X)
		p.sb.WriteByte(')')
	case *UpdateExpr:
		p.sb.WriteByte('(')
		if e.Prefix {
			p.sb.WriteString(e.Op)
			p.expr(e.X)
		} else {
			p.expr(e.X)
			p.sb.WriteString(e.Op)
		}
		p.sb.WriteByte(')')
	case *CondExpr:
		p.sb.WriteByte('(')
		p.expr(e.Cond)
		p.sb.WriteString(" ? ")
		p.expr(e.Then)
		p.sb.WriteString(" : ")
		p.expr(e.Else)
		p.sb.WriteByte(')')
	case *SeqExpr:
		p.sb.WriteByte('(')
		for i, x := range e.Exprs {
			if i > 0 {
				p.sb.WriteString(", ")
			}
			p.expr(x)
		}
		p.sb.WriteByte(')')
	case *ThisExpr:
		p.sb.WriteString("this")
	case *SpreadExpr:
		p.sb.WriteString("...")
		p.expr(e.X)
	case *YieldExpr:
		p.sb.WriteString("(yield")
		if e.Delegate {
			p.sb.WriteByte('*')
		}
		if e.X != nil {
			p.sb.WriteByte(' ')
			p.expr(e.X)
		}
		p.sb.WriteByte(')')
	default:
		panic(fmt.Sprintf("ast.Print: unknown expression %T", e))
	}
}

func (p *printer) args(args []Expr) {
	p.sb.WriteByte('(')
	for i, a := range args {
		if i > 0 {
			p.sb.WriteString(", ")
		}
		p.expr(a)
	}
	p.sb.WriteByte(')')
}

func isIdentName(s string) bool {
	if s == "" || lexKeyword(s) {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == '$' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// lexKeyword mirrors the lexer's reserved-word set for names that cannot be
// printed bare as object keys without re-parsing as keywords. Contextual
// keywords are fine as keys.
func lexKeyword(s string) bool {
	switch s {
	case "break", "case", "catch", "class", "const", "continue", "default",
		"delete", "do", "else", "extends", "false", "finally", "for",
		"function", "if", "in", "instanceof", "let", "new", "null", "of",
		"return", "static", "switch", "this", "throw", "true", "try",
		"typeof", "undefined", "var", "void", "while", "get", "set":
		return true
	}
	return false
}

func quoteJS(s string) string {
	var sb strings.Builder
	sb.WriteByte('"')
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '"':
			sb.WriteString(`\"`)
		case '\\':
			sb.WriteString(`\\`)
		case '\n':
			sb.WriteString(`\n`)
		case '\t':
			sb.WriteString(`\t`)
		case '\r':
			sb.WriteString(`\r`)
		default:
			if c < 0x20 {
				fmt.Fprintf(&sb, `\x%02x`, c)
			} else {
				sb.WriteByte(c)
			}
		}
	}
	sb.WriteByte('"')
	return sb.String()
}
