// Package ast defines the abstract syntax tree for the JavaScript subset.
//
// Every node carries its source location. Locations of object literals,
// array literals, function definitions, and call/property-access operations
// double as allocation sites and operation labels (ℓ in the paper), shared
// between the approximate interpreter and the static analysis.
package ast

import "repro/internal/loc"

// Node is implemented by every AST node.
type Node interface {
	Pos() loc.Loc
}

// Stmt is implemented by statement nodes.
type Stmt interface {
	Node
	stmtNode()
}

// Expr is implemented by expression nodes.
type Expr interface {
	Node
	exprNode()
}

// Program is a parsed module: the top-level statement list of one file.
type Program struct {
	File string
	Body []Stmt
}

// Pos returns the location of the start of the file.
func (p *Program) Pos() loc.Loc { return loc.Loc{File: p.File, Line: 1, Col: 1} }

// ---------------------------------------------------------------- statements

// VarKind is the declaration keyword of a variable statement.
type VarKind string

// Variable declaration kinds.
const (
	Var   VarKind = "var"
	Let   VarKind = "let"
	Const VarKind = "const"
)

// Declarator is a single name = init pair within a variable statement.
type Declarator struct {
	Name string
	Init Expr // may be nil
	Loc  loc.Loc
}

// VarDecl is a variable statement: var/let/const a = 1, b;
type VarDecl struct {
	Kind  VarKind
	Decls []*Declarator
	Loc   loc.Loc
}

// FuncDecl is a function declaration statement; the function itself is Fn.
type FuncDecl struct {
	Fn *FuncLit
}

// ExprStmt is an expression used as a statement.
type ExprStmt struct {
	X Expr
}

// BlockStmt is a brace-delimited statement list.
type BlockStmt struct {
	Body []Stmt
	Loc  loc.Loc
}

// IfStmt is a conditional statement; Else may be nil.
type IfStmt struct {
	Cond Expr
	Then Stmt
	Else Stmt // may be nil
	Loc  loc.Loc
}

// WhileStmt is a while loop.
type WhileStmt struct {
	Cond Expr
	Body Stmt
	Loc  loc.Loc
}

// DoWhileStmt is a do…while loop.
type DoWhileStmt struct {
	Body Stmt
	Cond Expr
	Loc  loc.Loc
}

// ForStmt is a classic three-clause for loop; any clause may be nil.
type ForStmt struct {
	Init Stmt // VarDecl or ExprStmt, may be nil
	Cond Expr // may be nil
	Post Expr // may be nil
	Body Stmt
	Loc  loc.Loc
}

// ForInStmt covers both for-in (IsOf false) and for-of (IsOf true) loops.
type ForInStmt struct {
	DeclKind VarKind // "" when the loop variable is a plain assignment target
	Name     string
	Obj      Expr
	Body     Stmt
	IsOf     bool
	Loc      loc.Loc
}

// ReturnStmt returns X (or undefined when X is nil) from a function.
type ReturnStmt struct {
	X   Expr // may be nil
	Loc loc.Loc
}

// BreakStmt exits the nearest enclosing loop or switch.
type BreakStmt struct {
	Loc loc.Loc
}

// ContinueStmt continues the nearest enclosing loop.
type ContinueStmt struct {
	Loc loc.Loc
}

// ThrowStmt throws X as an exception.
type ThrowStmt struct {
	X   Expr
	Loc loc.Loc
}

// TryStmt is try/catch/finally; Catch and Finally may each be nil, but not
// both.
type TryStmt struct {
	Block      *BlockStmt
	CatchParam string // "" when catch binds no parameter or there is no catch
	Catch      *BlockStmt
	Finally    *BlockStmt
	Loc        loc.Loc
}

// SwitchCase is one case (or default, when Test is nil) of a switch.
type SwitchCase struct {
	Test Expr // nil for default
	Body []Stmt
	Loc  loc.Loc
}

// SwitchStmt is a switch statement.
type SwitchStmt struct {
	Disc  Expr
	Cases []*SwitchCase
	Loc   loc.Loc
}

// EmptyStmt is a lone semicolon.
type EmptyStmt struct {
	Loc loc.Loc
}

func (s *VarDecl) Pos() loc.Loc      { return s.Loc }
func (s *FuncDecl) Pos() loc.Loc     { return s.Fn.Loc }
func (s *ExprStmt) Pos() loc.Loc     { return s.X.Pos() }
func (s *BlockStmt) Pos() loc.Loc    { return s.Loc }
func (s *IfStmt) Pos() loc.Loc       { return s.Loc }
func (s *WhileStmt) Pos() loc.Loc    { return s.Loc }
func (s *DoWhileStmt) Pos() loc.Loc  { return s.Loc }
func (s *ForStmt) Pos() loc.Loc      { return s.Loc }
func (s *ForInStmt) Pos() loc.Loc    { return s.Loc }
func (s *ReturnStmt) Pos() loc.Loc   { return s.Loc }
func (s *BreakStmt) Pos() loc.Loc    { return s.Loc }
func (s *ContinueStmt) Pos() loc.Loc { return s.Loc }
func (s *ThrowStmt) Pos() loc.Loc    { return s.Loc }
func (s *TryStmt) Pos() loc.Loc      { return s.Loc }
func (s *SwitchStmt) Pos() loc.Loc   { return s.Loc }
func (s *EmptyStmt) Pos() loc.Loc    { return s.Loc }

func (*VarDecl) stmtNode()      {}
func (*FuncDecl) stmtNode()     {}
func (*ExprStmt) stmtNode()     {}
func (*BlockStmt) stmtNode()    {}
func (*IfStmt) stmtNode()       {}
func (*WhileStmt) stmtNode()    {}
func (*DoWhileStmt) stmtNode()  {}
func (*ForStmt) stmtNode()      {}
func (*ForInStmt) stmtNode()    {}
func (*ReturnStmt) stmtNode()   {}
func (*BreakStmt) stmtNode()    {}
func (*ContinueStmt) stmtNode() {}
func (*ThrowStmt) stmtNode()    {}
func (*TryStmt) stmtNode()      {}
func (*SwitchStmt) stmtNode()   {}
func (*EmptyStmt) stmtNode()    {}

// --------------------------------------------------------------- expressions

// Ident is a variable reference.
type Ident struct {
	Name string
	Loc  loc.Loc
}

// NumberLit is a numeric literal.
type NumberLit struct {
	Value float64
	Raw   string
	Loc   loc.Loc
}

// StringLit is a quoted string literal.
type StringLit struct {
	Value string
	Loc   loc.Loc
}

// BoolLit is true or false.
type BoolLit struct {
	Value bool
	Loc   loc.Loc
}

// NullLit is the null literal.
type NullLit struct {
	Loc loc.Loc
}

// UndefinedLit is the undefined literal (modeled as a literal, not a global).
type UndefinedLit struct {
	Loc loc.Loc
}

// RegexLit is a regular-expression literal.
type RegexLit struct {
	Pattern string
	Flags   string
	Loc     loc.Loc
}

// TemplateLit is a template literal `a${x}b`: Quasis has one more element
// than Exprs, interleaved Quasis[0] Exprs[0] Quasis[1] … .
type TemplateLit struct {
	Quasis []string
	Exprs  []Expr
	Loc    loc.Loc
}

// ArrayLit is an array literal; its location is an allocation site.
type ArrayLit struct {
	Elems []Expr // a *SpreadExpr element splices an iterable
	Loc   loc.Loc
}

// PropKind distinguishes ordinary properties from accessors.
type PropKind int

// Object-literal property kinds.
const (
	NormalProp PropKind = iota
	GetterProp
	SetterProp
)

// Property is one entry of an object literal.
type Property struct {
	Key      string // static key; unused when Computed is non-nil
	Computed Expr   // computed key expression, or nil
	Value    Expr
	Kind     PropKind
	Loc      loc.Loc
}

// ObjectLit is an object literal; its location is an allocation site.
type ObjectLit struct {
	Props []*Property
	Loc   loc.Loc
}

// FuncLit is a function definition (declaration body, function expression,
// or arrow function). Its location is both an allocation site and the
// function-definition label used by Visited sets and call graphs.
type FuncLit struct {
	Name    string // "" for anonymous functions
	Params  []string
	RestIdx int // index of rest parameter, or -1
	Body    *BlockStmt
	// ExprBody is set instead of Body for expression-bodied arrows.
	ExprBody Expr
	IsArrow  bool
	// IsAsync marks async functions; their results are promises and their
	// bodies may use the await operator.
	IsAsync bool
	// IsGenerator marks function* definitions; calling one returns a
	// generator object over the values its body yields.
	IsGenerator bool
	Loc         loc.Loc
}

// CallExpr is a function call; its location is the call-site label.
type CallExpr struct {
	Callee Expr
	Args   []Expr // a *SpreadExpr argument splices an array
	Loc    loc.Loc
}

// NewExpr is a constructor call; its location is an allocation site.
type NewExpr struct {
	Callee Expr
	Args   []Expr
	Loc    loc.Loc
}

// MemberExpr is a property access. When Computed is false the access is
// static (E.p, property name in Prop); when true it is dynamic (E[E'],
// name expression in PropExpr) and Loc labels the dynamic read operation.
type MemberExpr struct {
	Obj      Expr
	Prop     string
	PropExpr Expr
	Computed bool
	Loc      loc.Loc
}

// AssignExpr assigns Value to Target, possibly with a compound operator.
type AssignExpr struct {
	Op     string // "=", "+=", …
	Target Expr   // *Ident or *MemberExpr
	Value  Expr
	Loc    loc.Loc
}

// BinaryExpr is an arithmetic, comparison, or relational operation.
type BinaryExpr struct {
	Op   string
	L, R Expr
	Loc  loc.Loc
}

// LogicalExpr is a short-circuiting &&, ||, or ?? operation.
type LogicalExpr struct {
	Op   string
	L, R Expr
	Loc  loc.Loc
}

// UnaryExpr is a prefix operator application (!, -, +, ~, typeof, void,
// delete).
type UnaryExpr struct {
	Op  string
	X   Expr
	Loc loc.Loc
}

// UpdateExpr is ++ or -- in prefix or postfix position.
type UpdateExpr struct {
	Op     string // "++" or "--"
	X      Expr
	Prefix bool
	Loc    loc.Loc
}

// CondExpr is the ternary conditional.
type CondExpr struct {
	Cond, Then, Else Expr
	Loc              loc.Loc
}

// SeqExpr is the comma operator.
type SeqExpr struct {
	Exprs []Expr
	Loc   loc.Loc
}

// ThisExpr is the this keyword.
type ThisExpr struct {
	Loc loc.Loc
}

// SpreadExpr is …x in call arguments or array literals.
type SpreadExpr struct {
	X   Expr
	Loc loc.Loc
}

// YieldExpr is yield or yield* inside a generator function. X may be nil
// for a bare yield.
type YieldExpr struct {
	X        Expr // may be nil
	Delegate bool // yield* E
	Loc      loc.Loc
}

func (e *Ident) Pos() loc.Loc        { return e.Loc }
func (e *NumberLit) Pos() loc.Loc    { return e.Loc }
func (e *StringLit) Pos() loc.Loc    { return e.Loc }
func (e *BoolLit) Pos() loc.Loc      { return e.Loc }
func (e *NullLit) Pos() loc.Loc      { return e.Loc }
func (e *UndefinedLit) Pos() loc.Loc { return e.Loc }
func (e *RegexLit) Pos() loc.Loc     { return e.Loc }
func (e *TemplateLit) Pos() loc.Loc  { return e.Loc }
func (e *ArrayLit) Pos() loc.Loc     { return e.Loc }
func (e *ObjectLit) Pos() loc.Loc    { return e.Loc }
func (e *FuncLit) Pos() loc.Loc      { return e.Loc }
func (e *CallExpr) Pos() loc.Loc     { return e.Loc }
func (e *NewExpr) Pos() loc.Loc      { return e.Loc }
func (e *MemberExpr) Pos() loc.Loc   { return e.Loc }
func (e *AssignExpr) Pos() loc.Loc   { return e.Loc }
func (e *BinaryExpr) Pos() loc.Loc   { return e.Loc }
func (e *LogicalExpr) Pos() loc.Loc  { return e.Loc }
func (e *UnaryExpr) Pos() loc.Loc    { return e.Loc }
func (e *UpdateExpr) Pos() loc.Loc   { return e.Loc }
func (e *CondExpr) Pos() loc.Loc     { return e.Loc }
func (e *SeqExpr) Pos() loc.Loc      { return e.Loc }
func (e *ThisExpr) Pos() loc.Loc     { return e.Loc }
func (e *SpreadExpr) Pos() loc.Loc   { return e.Loc }
func (e *YieldExpr) Pos() loc.Loc    { return e.Loc }

func (*Ident) exprNode()        {}
func (*NumberLit) exprNode()    {}
func (*StringLit) exprNode()    {}
func (*BoolLit) exprNode()      {}
func (*NullLit) exprNode()      {}
func (*UndefinedLit) exprNode() {}
func (*RegexLit) exprNode()     {}
func (*TemplateLit) exprNode()  {}
func (*ArrayLit) exprNode()     {}
func (*ObjectLit) exprNode()    {}
func (*FuncLit) exprNode()      {}
func (*CallExpr) exprNode()     {}
func (*NewExpr) exprNode()      {}
func (*MemberExpr) exprNode()   {}
func (*AssignExpr) exprNode()   {}
func (*BinaryExpr) exprNode()   {}
func (*LogicalExpr) exprNode()  {}
func (*UnaryExpr) exprNode()    {}
func (*UpdateExpr) exprNode()   {}
func (*CondExpr) exprNode()     {}
func (*SeqExpr) exprNode()      {}
func (*ThisExpr) exprNode()     {}
func (*SpreadExpr) exprNode()   {}
func (*YieldExpr) exprNode()    {}
