package ast

import (
	"strings"
	"testing"

	"repro/internal/loc"
)

func l(line, col int) loc.Loc { return loc.Loc{File: "t.js", Line: line, Col: col} }

// buildTree constructs a small tree by hand:
//
//	function f(x) { return g(x + 1); }
//	var o = {m: function() {}};
//	o.m(new T());
func buildTree() *Program {
	fnBody := &BlockStmt{
		Body: []Stmt{
			&ReturnStmt{
				X: &CallExpr{
					Callee: &Ident{Name: "g", Loc: l(1, 24)},
					Args: []Expr{&BinaryExpr{
						Op: "+",
						L:  &Ident{Name: "x", Loc: l(1, 26)},
						R:  &NumberLit{Value: 1, Loc: l(1, 30)},
					}},
					Loc: l(1, 25),
				},
				Loc: l(1, 17),
			},
		},
		Loc: l(1, 15),
	}
	f := &FuncLit{Name: "f", Params: []string{"x"}, RestIdx: -1, Body: fnBody, Loc: l(1, 1)}
	inner := &FuncLit{RestIdx: -1, Body: &BlockStmt{Loc: l(2, 13)}, Loc: l(2, 13)}
	objLit := &ObjectLit{Props: []*Property{{Key: "m", Value: inner, Loc: l(2, 10)}}, Loc: l(2, 9)}
	call := &CallExpr{
		Callee: &MemberExpr{Obj: &Ident{Name: "o", Loc: l(3, 1)}, Prop: "m", Loc: l(3, 2)},
		Args:   []Expr{&NewExpr{Callee: &Ident{Name: "T", Loc: l(3, 9)}, Loc: l(3, 5)}},
		Loc:    l(3, 4),
	}
	return &Program{
		File: "t.js",
		Body: []Stmt{
			&FuncDecl{Fn: f},
			&VarDecl{Kind: Var, Decls: []*Declarator{{Name: "o", Init: objLit, Loc: l(2, 5)}}, Loc: l(2, 1)},
			&ExprStmt{X: call},
		},
	}
}

func TestWalkVisitsEverything(t *testing.T) {
	var kinds []string
	Walk(buildTree(), func(n Node) bool {
		kinds = append(kinds, strings.TrimPrefix(strings.TrimPrefix(
			strings.Split(strings.TrimPrefix(typename(n), "*"), ".")[1], "ast."), "*"))
		return true
	})
	joined := strings.Join(kinds, ",")
	for _, want := range []string{"Program", "FuncDecl", "FuncLit", "ReturnStmt",
		"CallExpr", "BinaryExpr", "VarDecl", "ObjectLit", "MemberExpr", "NewExpr"} {
		if !strings.Contains(joined, want) {
			t.Errorf("Walk missed %s; visited: %s", want, joined)
		}
	}
}

func typename(n Node) string {
	switch n.(type) {
	case *Program:
		return "*ast.Program"
	case *FuncDecl:
		return "*ast.FuncDecl"
	case *FuncLit:
		return "*ast.FuncLit"
	case *ReturnStmt:
		return "*ast.ReturnStmt"
	case *CallExpr:
		return "*ast.CallExpr"
	case *BinaryExpr:
		return "*ast.BinaryExpr"
	case *VarDecl:
		return "*ast.VarDecl"
	case *ObjectLit:
		return "*ast.ObjectLit"
	case *MemberExpr:
		return "*ast.MemberExpr"
	case *NewExpr:
		return "*ast.NewExpr"
	case *BlockStmt:
		return "*ast.BlockStmt"
	case *ExprStmt:
		return "*ast.ExprStmt"
	default:
		return "*ast.Other"
	}
}

func TestWalkSkipChildren(t *testing.T) {
	// Returning false at function literals must hide their bodies.
	var calls int
	Walk(buildTree(), func(n Node) bool {
		if _, ok := n.(*CallExpr); ok {
			calls++
		}
		if _, ok := n.(*FuncLit); ok {
			return false
		}
		return true
	})
	// Only the top-level o.m(new T()) call remains; g(x+1) is inside f.
	if calls != 1 {
		t.Errorf("calls = %d, want 1 (skip must prune function bodies)", calls)
	}
}

func TestCollectors(t *testing.T) {
	tree := buildTree()
	if got := len(Functions(tree)); got != 2 {
		t.Errorf("Functions = %d, want 2", got)
	}
	if got := len(CallSites(tree)); got != 2 {
		t.Errorf("CallSites = %d, want 2", got)
	}
	if got := len(NewSites(tree)); got != 1 {
		t.Errorf("NewSites = %d, want 1", got)
	}
	// Source order.
	fns := Functions(tree)
	if !fns[0].Loc.Before(fns[1].Loc) {
		t.Error("Functions not in source order")
	}
}

func TestPosPropagation(t *testing.T) {
	tree := buildTree()
	if tree.Pos() != (loc.Loc{File: "t.js", Line: 1, Col: 1}) {
		t.Errorf("program pos = %v", tree.Pos())
	}
	fd := tree.Body[0].(*FuncDecl)
	if fd.Pos() != l(1, 1) {
		t.Errorf("func decl pos = %v", fd.Pos())
	}
	es := tree.Body[2].(*ExprStmt)
	if es.Pos() != l(3, 4) {
		t.Errorf("expr stmt pos = %v (should delegate to expression)", es.Pos())
	}
}

func TestPrintHandBuiltTree(t *testing.T) {
	out := Print(buildTree())
	for _, want := range []string{
		"function f(x)", "return g((x + 1));", "var o = ({m: (function", "o.m(new T())",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("printed output missing %q:\n%s", want, out)
		}
	}
}

func TestPrintQuoting(t *testing.T) {
	s := &StringLit{Value: "a\"b\\c\nd\te", Loc: l(1, 1)}
	out := Print(s)
	if out != `"a\"b\\c\nd\te"` {
		t.Errorf("quoted = %s", out)
	}
	// Keyword object keys must stay quoted; contextual keywords may be bare.
	obj := &ObjectLit{Props: []*Property{
		{Key: "function", Value: &NumberLit{Value: 1}},
		{Key: "of", Value: &NumberLit{Value: 2}},
		{Key: "has space", Value: &NumberLit{Value: 3}},
	}, Loc: l(1, 1)}
	out = Print(obj)
	if !strings.Contains(out, `"function": 1`) {
		t.Errorf("keyword key not quoted: %s", out)
	}
	if !strings.Contains(out, `"has space": 3`) {
		t.Errorf("spaced key not quoted: %s", out)
	}
}

func TestPrintRestParams(t *testing.T) {
	f := &FuncLit{
		Name:    "r",
		Params:  []string{"a", "rest"},
		RestIdx: 1,
		Body:    &BlockStmt{Loc: l(1, 1)},
		Loc:     l(1, 1),
	}
	out := Print(&FuncDecl{Fn: f})
	if !strings.Contains(out, "function r(a, ...rest)") {
		t.Errorf("rest param printing wrong: %s", out)
	}
}
