package ast_test

import (
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/parser"
	"repro/internal/testgen"
)

// printVia parses src and returns its canonical printed form.
func printVia(t *testing.T, src string) string {
	t.Helper()
	prog, err := parser.Parse("t.js", src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return ast.Print(prog)
}

// TestPrintCoversEveryConstruct drives the printer through every node type
// the parser can produce and checks the output reparses to a fixpoint.
func TestPrintCoversEveryConstruct(t *testing.T) {
	srcs := []string{
		// literals of every kind
		`var a = 1; var b = "s"; var c = true; var d = false; var e = null; var f = undefined;`,
		`var r = /pat+ern/gi;`,
		"var t = `pre${x}mid${y + 1}post`;",
		`var big = 1e21; var tiny = 2.5e-7; var neg = -0.5;`,
		// arrays with holes and spread
		`var arr = [1, , 3, ...rest];`,
		// objects: all property kinds
		`var o = {plain: 1, "quoted key": 2, [comp()]: 3, short, m(a) { return a; }, get g() { return 1; }, set s(v) { this.v = v; }};`,
		// functions: all forms
		`function decl(a, b) { return a; }`,
		`var fe = function named(x) { return named; };`,
		`var ar1 = x => x;`,
		`var ar2 = (a, b) => { return a + b; };`,
		`var rest = function(first, ...others) { return others; };`,
		// every statement form
		`if (a) { f(); } else if (b) { g(); } else { h(); }`,
		`while (x) { x--; }`,
		`do { tick(); } while (more());`,
		`for (var i = 0, j = 9; i < j; i++, j--) { swap(i, j); }`,
		`for (;;) { break; }`,
		`for (var k in obj) { visit(k); }`,
		`for (const v of list) { use(v); }`,
		`for (k in obj) {}`,
		`switch (x) { case 1: a(); break; case 2: case 3: b(); break; default: c(); }`,
		`try { f(); } catch (e) { g(e); } finally { h(); }`,
		`try { f(); } catch { g(); }`,
		`throw new Error("boom");`,
		`;`,
		`{ var inner = 1; }`,
		`function loop() { for (;;) { continue; } }`,
		// every expression form
		`x = a ? b : c;`,
		`y = (1, 2, 3);`,
		`z = a && b || c ?? d;`,
		`u = typeof a; v = void 0; w = delete o.p; n = -a; p = +b; q = ~c; r2 = !d;`,
		`i++; i--; ++i; --i; o.n++; a[0]--;`,
		`x += 1; x -= 2; x *= 3; x /= 4; x %= 5; x &= 6; x |= 7; x ^= 8; x <<= 1; x >>= 1;`,
		`b1 = a & b | c ^ d; b2 = a << 2 >> 1 >>> 3; b3 = 2 ** 8;`,
		`c1 = a in o; c2 = x instanceof F;`,
		`m = o.p.q; n2 = o["k"]; call3 = f(g(h(1)));`,
		`nw = new Ctor(1, 2); nw2 = new ns.Deep.Ctor(); nw3 = new Bare;`,
		`sp = f(...args, last);`,
	}
	for _, src := range srcs {
		out1 := printVia(t, src)
		prog2, err := parser.Parse("t.js", out1)
		if err != nil {
			t.Errorf("reparse failed for %q: %v\nprinted:\n%s", src, err, out1)
			continue
		}
		out2 := ast.Print(prog2)
		if out1 != out2 {
			t.Errorf("not a fixpoint for %q:\nfirst:\n%s\nsecond:\n%s", src, out1, out2)
		}
	}
}

// TestPrintGenerated lifts the parser-package round-trip property into the
// ast package so the printer's coverage is measured here too.
func TestPrintGenerated(t *testing.T) {
	for seed := uint64(0); seed < 100; seed++ {
		src := testgen.New(seed*3 + 11).Program()
		out1 := printVia(t, src)
		prog2, err := parser.Parse("t.js", out1)
		if err != nil {
			t.Fatalf("seed %d: reparse: %v\n%s", seed, err, out1)
		}
		if out2 := ast.Print(prog2); out1 != out2 {
			t.Fatalf("seed %d: not a fixpoint", seed)
		}
	}
}

// TestPrintStableIndentation checks block nesting renders with consistent
// two-space indentation.
func TestPrintStableIndentation(t *testing.T) {
	out := printVia(t, `function f() { if (a) { while (b) { g(); } } }`)
	for _, want := range []string{
		"function f() {\n", "  if (a)\n", "    while (b)\n", "      g();\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
