// Package modules implements the CommonJS module system over in-memory
// projects: require() resolution (relative paths, node_modules packages,
// Node.js built-in modules), module caching, and the module/exports/
// require/__filename/__dirname bindings.
package modules

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/ast"
	"repro/internal/interp"
	"repro/internal/parser"
	"repro/internal/perf"
	"repro/internal/value"
)

// Project is an in-memory JavaScript project: a virtual file system of
// module sources plus package metadata. It substitutes for the npm/GitHub
// checkouts of the paper's corpus.
type Project struct {
	// Name identifies the project in reports.
	Name string
	// Files maps absolute virtual paths ("/app/index.js",
	// "/node_modules/express/lib/application.js") to source text.
	Files map[string]string
	// MainEntries are the entry module paths of the main package; static
	// reachability and approximate interpretation start here.
	MainEntries []string
	// TestEntries are test-suite entry modules used to produce dynamic
	// call graphs (the paper's NodeProf-under-test-suite setup).
	TestEntries []string
	// MainPrefix is the path prefix of the main package (everything
	// outside it counts as dependency code). Defaults to "/" minus
	// node_modules.
	MainPrefix string

	// Shared parse cache: every pipeline phase (approximate interpretation,
	// static analysis, corpus statistics, vulnerability selection, dynamic
	// call graphs) parses through it, so each file is parsed exactly once
	// per project. Lazily created; see Parse.
	parseOnce  sync.Once
	parseCache *parseCache
}

// ErrNoSource reports a path with neither a project file nor a built-in
// node: module behind it.
var ErrNoSource = errors.New("modules: no such file")

// ParseStore is a persistent parse cache behind the in-memory one:
// implemented by the content-addressed artifact store (internal/cache) and
// attached per project via SetParseStore. Keys are SourceKey values, so
// the persistent and in-memory caches share one key scheme. Loads that
// miss for any reason return ok=false; stores are fire-and-forget.
type ParseStore interface {
	LoadAST(key string) (*ast.Program, bool)
	StoreAST(key string, prog *ast.Program)
}

// SourceKey is the cache key of one parsed file: the SHA-256 over the path
// (embedded in every source location the parser emits) and the source
// bytes, length-framed so the two cannot alias. Parse results depend on
// exactly these inputs, so equal keys mean interchangeable ASTs — within a
// session and across processes sharing a persistent store.
func SourceKey(path, src string) string {
	h := sha256.New()
	var lenBuf [8]byte
	binary.BigEndian.PutUint64(lenBuf[:], uint64(len(path)))
	h.Write(lenBuf[:])
	h.Write([]byte(path))
	binary.BigEndian.PutUint64(lenBuf[:], uint64(len(src)))
	h.Write(lenBuf[:])
	h.Write([]byte(src))
	return hex.EncodeToString(h.Sum(nil))
}

// parseCache holds parse results for one project, keyed by SourceKey
// (content hash, not path) so an in-session edit of a file invalidates its
// stale parse by construction. The mutex is held across parsing, which
// both serializes concurrent parsers of the same project (the corpus
// driver parallelizes across projects, not within one) and guarantees each
// file version is parsed exactly once.
type parseCache struct {
	mu    sync.Mutex
	progs map[string]*ast.Program
	store ParseStore

	parses, hits int64
}

// SetParseStore attaches a persistent parse store to the project. Parses
// not found in memory are looked up there before parsing, and fresh parses
// are written back. Attach before analysis starts; safe to leave nil.
func (p *Project) SetParseStore(s ParseStore) {
	p.parseOnce.Do(func() { p.parseCache = &parseCache{progs: map[string]*ast.Program{}} })
	c := p.parseCache
	c.mu.Lock()
	c.store = s
	c.mu.Unlock()
}

// Parse returns the parsed program for path — a project file or a built-in
// node: module — parsing each file version at most once per project. It is
// safe for concurrent use. Paths with no source return ErrNoSource.
func (p *Project) Parse(path string) (*ast.Program, error) {
	p.parseOnce.Do(func() { p.parseCache = &parseCache{progs: map[string]*ast.Program{}} })
	c := p.parseCache
	c.mu.Lock()
	defer c.mu.Unlock()
	src, ok := p.Files[path]
	if !ok {
		if src, ok = nodeLibSources[path]; !ok {
			return nil, fmt.Errorf("%w: %s", ErrNoSource, path)
		}
	}
	key := SourceKey(path, src)
	if prog, ok := c.progs[key]; ok {
		c.hits++
		perf.Global().AddParseHit()
		return prog, nil
	}
	if c.store != nil {
		if prog, ok := c.store.LoadAST(key); ok {
			c.progs[key] = prog
			c.hits++
			perf.Global().AddParseHit()
			return prog, nil
		}
	}
	start := time.Now()
	prog, err := parser.Parse(path, src)
	if err != nil {
		return nil, err
	}
	c.parses++
	perf.Global().AddParse(time.Since(start))
	c.progs[key] = prog
	if c.store != nil {
		c.store.StoreAST(key, prog)
	}
	return prog, nil
}

// nodeLibKeys memoizes the SourceKeys of the built-in node: modules, which
// are live in every project's parse cache regardless of its file set.
var (
	nodeLibKeysOnce sync.Once
	nodeLibKeys     map[string]bool
)

func builtinParseKeys() map[string]bool {
	nodeLibKeysOnce.Do(func() {
		nodeLibKeys = make(map[string]bool, len(nodeLibSources))
		for path, src := range nodeLibSources {
			nodeLibKeys[SourceKey(path, src)] = true
		}
	})
	return nodeLibKeys
}

// PruneParses evicts cached parses whose content no longer appears in the
// project. The cache is keyed by content hash, so without pruning every
// edit in a long-lived session strands the superseded version's AST in
// memory forever; pruning after each edit bounds the cache by the current
// file set (plus the built-in node: modules, which stay resident). An
// evicted parse can still be re-served by the persistent store if the old
// content comes back. The caller must ensure p.Files is not concurrently
// mutated (delta sessions call this under their session lock).
func (p *Project) PruneParses() {
	p.parseOnce.Do(func() { p.parseCache = &parseCache{progs: map[string]*ast.Program{}} })
	c := p.parseCache
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.progs) == 0 {
		return
	}
	builtin := builtinParseKeys()
	live := make(map[string]bool, len(p.Files))
	for path, src := range p.Files {
		live[SourceKey(path, src)] = true
	}
	for key := range c.progs {
		if !live[key] && !builtin[key] {
			delete(c.progs, key)
		}
	}
}

// ParseCounts reports how many parses the project's cache performed and how
// many repeat requests it served from cache.
func (p *Project) ParseCounts() (parses, hits int64) {
	p.parseOnce.Do(func() { p.parseCache = &parseCache{progs: map[string]*ast.Program{}} })
	c := p.parseCache
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.parses, c.hits
}

// SortedPaths returns all file paths in deterministic order.
func (p *Project) SortedPaths() []string {
	paths := make([]string, 0, len(p.Files))
	for f := range p.Files {
		paths = append(paths, f)
	}
	sort.Strings(paths)
	return paths
}

// IsMainModule reports whether path belongs to the main package (not a
// dependency under node_modules).
func (p *Project) IsMainModule(path string) bool {
	if strings.Contains(path, "/node_modules/") || strings.HasPrefix(path, "node:") {
		return false
	}
	if p.MainPrefix != "" {
		return strings.HasPrefix(path, p.MainPrefix)
	}
	return true
}

// Packages returns the distinct package roots in the project: the main
// package plus each node_modules/<name> directory.
func (p *Project) Packages() []string {
	seen := map[string]bool{}
	var out []string
	add := func(name string) {
		if !seen[name] {
			seen[name] = true
			out = append(out, name)
		}
	}
	add("<main>")
	for path := range p.Files {
		if i := strings.Index(path, "/node_modules/"); i >= 0 {
			rest := path[i+len("/node_modules/"):]
			if j := strings.Index(rest, "/"); j >= 0 {
				add(rest[:j])
			} else {
				add(strings.TrimSuffix(rest, ".js"))
			}
		}
	}
	sort.Strings(out)
	return out
}

// CodeSize returns the total source size in bytes.
func (p *Project) CodeSize() int {
	total := 0
	for _, src := range p.Files {
		total += len(src)
	}
	return total
}

// nodeBuiltins is the set of Node.js modules implemented by this runtime.
// Pure modules are written in JavaScript (see nodelib.go) so that their
// functions participate in analysis like any dependency code; external
// modules touch the outside world and are sandbox-mocked during
// approximate interpretation, per the paper.
var externalModules = map[string]bool{
	"fs": true, "net": true, "http": true, "https": true, "child_process": true,
	"os": true, "dgram": true, "tls": true, "cluster": true, "dns": true,
	"readline": true, "zlib": true, "crypto": true,
}

// Registry loads and caches modules for one interpreter instance.
type Registry struct {
	Project *Project
	Interp  *interp.Interp

	// Sandbox replaces external Node modules with mocks (approximate mode).
	Sandbox bool

	cache    map[string]value.Value // module path → exports
	inFlight map[string]*value.Object
}

// NewRegistry wires a project to an interpreter and installs itself as the
// interpreter's ModuleHost.
func NewRegistry(project *Project, it *interp.Interp) *Registry {
	r := &Registry{
		Project:  project,
		Interp:   it,
		cache:    map[string]value.Value{},
		inFlight: map[string]*value.Object{},
	}
	it.ModuleHost = r
	return r
}

// ParseAll parses every file in the project, returning programs keyed by
// path. Parse results come from the project's shared cache, so files
// already parsed by another phase are not parsed again.
func (r *Registry) ParseAll() (map[string]*ast.Program, error) {
	out := map[string]*ast.Program{}
	for _, path := range r.Project.SortedPaths() {
		prog, err := r.parse(path)
		if err != nil {
			return nil, err
		}
		out[path] = prog
	}
	return out, nil
}

func (r *Registry) parse(path string) (*ast.Program, error) {
	return r.Project.Parse(path)
}

// Require implements interp.ModuleHost.
func (r *Registry) Require(from, name string) (value.Value, error) {
	path, err := r.Resolve(from, name)
	if err != nil {
		return nil, r.Interp.ThrowError("Error", err.Error())
	}
	return r.Load(path)
}

// Resolve maps a require() specifier to a module path, following the
// CommonJS rules for relative paths and node_modules lookups.
func (r *Registry) Resolve(from, name string) (string, error) {
	return Resolve(r.Project, from, name)
}

// Resolve is the pure module-resolution function behind Registry.Resolve;
// the static analysis uses it directly (no interpreter required).
func Resolve(p *Project, from, name string) (string, error) {
	name = strings.TrimPrefix(name, "node:")
	if strings.HasPrefix(name, "./") || strings.HasPrefix(name, "../") || strings.HasPrefix(name, "/") {
		base := dirOf(from)
		cand := normalize(joinPath(base, name))
		for _, c := range []string{cand, cand + ".js", cand + "/index.js"} {
			if _, ok := p.Files[c]; ok {
				return c, nil
			}
		}
		return "", fmt.Errorf("cannot find module '%s' from %s", name, from)
	}
	// Built-in Node modules.
	if externalModules[name] {
		return "node:" + name, nil
	}
	if _, ok := nodeLibSources["node:"+name]; ok {
		return "node:" + name, nil
	}
	// node_modules lookup (flat layout).
	for _, c := range []string{
		"/node_modules/" + name + "/index.js",
		"/node_modules/" + name + ".js",
		"/node_modules/" + name,
	} {
		if _, ok := p.Files[c]; ok {
			return c, nil
		}
	}
	// main field convention: /node_modules/<name>/main.js
	if _, ok := p.Files["/node_modules/"+name+"/main.js"]; ok {
		return "/node_modules/" + name + "/main.js", nil
	}
	return "", fmt.Errorf("cannot find module '%s' from %s", name, from)
}

// Load executes (or returns the cached exports of) the module at path.
func (r *Registry) Load(path string) (value.Value, error) {
	if v, ok := r.cache[path]; ok {
		return v, nil
	}
	// Cyclic requires observe the partially initialized exports object, as
	// in Node.
	if exports, ok := r.inFlight[path]; ok {
		return exports, nil
	}

	// External modules: mocked under sandbox, minimal JS implementations
	// otherwise.
	if strings.HasPrefix(path, "node:") {
		name := strings.TrimPrefix(path, "node:")
		if externalModules[name] {
			if r.Sandbox {
				mock := r.Interp.NewMockModule()
				r.cache[path] = mock
				return mock, nil
			}
			// Concrete mode uses the same JS stubs (no real I/O exists in
			// this environment either way).
		}
		if _, ok := nodeLibSources[path]; !ok {
			return nil, r.Interp.ThrowError("Error", "unsupported built-in module "+path)
		}
	}

	prog, err := r.parse(path)
	if err != nil {
		return nil, r.Interp.ThrowError("SyntaxError", err.Error())
	}

	it := r.Interp
	exports := it.NewPlainObject()
	module := it.NewPlainObject()
	module.Set("exports", exports)
	module.Set("id", value.String(path))
	r.inFlight[path] = exports
	// Deferred so a panic unwinding out of module code (contained further up
	// by the per-item recovery in approx/dyncg) does not leave the module
	// permanently "in flight", which would hand its half-initialized exports
	// to every later require.
	defer delete(r.inFlight, path)

	scope := value.NewScope(it.GlobalScope())
	scope.Declare("module", module)
	scope.Declare("exports", exports)
	scope.Declare("__filename", value.String(path))
	scope.Declare("__dirname", value.String(dirOf(path)))
	scope.Declare("require", r.makeRequire(path))

	_, err = it.RunProgram(prog, scope, exports)
	if err != nil {
		return nil, err
	}
	// module.exports may have been reassigned.
	var result value.Value = exports
	if p := module.GetOwn("exports"); p != nil && !p.IsAccessor() {
		result = p.Value
	}
	r.cache[path] = result
	return result, nil
}

// LoadedPaths returns every module path whose top-level code this registry
// has executed to completion (entries and transitive requires alike), in
// sorted order.
func (r *Registry) LoadedPaths() []string {
	out := make([]string, 0, len(r.cache))
	for p := range r.cache {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

func (r *Registry) makeRequire(from string) *value.Object {
	req := r.Interp.NewNativeFunction("require", func(h value.Host, this value.Value, args []value.Value) (value.Value, error) {
		if len(args) == 0 {
			return nil, r.Interp.ThrowError("TypeError", "require expects a module name")
		}
		name := value.ToString(args[0])
		return r.Require(from, name)
	})
	return req
}

// LoadEntries loads every main entry module of the project in order.
func (r *Registry) LoadEntries() error {
	for _, e := range r.Project.MainEntries {
		if _, err := r.Load(e); err != nil {
			return fmt.Errorf("loading %s: %w", e, err)
		}
	}
	return nil
}

// ----------------------------------------------------------------- path ops

func dirOf(path string) string {
	i := strings.LastIndexByte(path, '/')
	if i <= 0 {
		return "/"
	}
	return path[:i]
}

func joinPath(base, rel string) string {
	if strings.HasPrefix(rel, "/") {
		return rel
	}
	return base + "/" + rel
}

func normalize(path string) string {
	parts := strings.Split(path, "/")
	var out []string
	for _, p := range parts {
		switch p {
		case "", ".":
		case "..":
			if len(out) > 0 {
				out = out[:len(out)-1]
			}
		default:
			out = append(out, p)
		}
	}
	return "/" + strings.Join(out, "/")
}
