package modules

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/ast"
	"repro/internal/interp"
)

func cacheProject() *Project {
	return &Project{
		Name: "cache-test",
		Files: map[string]string{
			"/app/index.js": "exports.a = function a() { return 1; };",
			"/app/util.js":  "exports.b = function b() { return 2; };",
		},
		MainEntries: []string{"/app/index.js"},
	}
}

func TestProjectParseCaching(t *testing.T) {
	p := cacheProject()
	p1, err := p.Parse("/app/index.js")
	if err != nil {
		t.Fatal(err)
	}
	p2, err := p.Parse("/app/index.js")
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Error("repeat Parse returned a different *ast.Program")
	}
	parses, hits := p.ParseCounts()
	if parses != 1 || hits != 1 {
		t.Errorf("parses=%d hits=%d, want 1/1", parses, hits)
	}
}

func TestProjectParseNodeLib(t *testing.T) {
	p := cacheProject()
	if _, err := p.Parse("node:events"); err != nil {
		t.Fatalf("node: lib module should parse via the cache: %v", err)
	}
	if _, err := p.Parse("/no/such.js"); !errors.Is(err, ErrNoSource) {
		t.Errorf("missing file: got %v, want ErrNoSource", err)
	}
}

// TestProjectParseConcurrent hammers one project's cache from many
// goroutines; under -race this validates the concurrent-reader guarantee,
// and the counters validate exactly-once parsing.
func TestProjectParseConcurrent(t *testing.T) {
	p := cacheProject()
	paths := []string{"/app/index.js", "/app/util.js", "node:events", "node:path"}
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				path := paths[(g+i)%len(paths)]
				if _, err := p.Parse(path); err != nil {
					t.Errorf("%s: %v", path, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	parses, hits := p.ParseCounts()
	if parses != int64(len(paths)) {
		t.Errorf("parses = %d, want exactly %d (one per file)", parses, len(paths))
	}
	if parses+hits != 16*50 {
		t.Errorf("parses+hits = %d, want %d", parses+hits, 16*50)
	}
}

// TestRegistryUsesSharedCache checks that module execution parses through
// the project cache rather than a private one.
func TestRegistryUsesSharedCache(t *testing.T) {
	p := cacheProject()
	// Pre-parse, then load through a registry: no new parse of index.js.
	if _, err := p.Parse("/app/index.js"); err != nil {
		t.Fatal(err)
	}
	parsesBefore, _ := p.ParseCounts()
	r := NewRegistry(p, interp.New(interp.Options{}))
	if _, err := r.Load("/app/index.js"); err != nil {
		t.Fatal(err)
	}
	parsesAfter, hits := p.ParseCounts()
	if parsesAfter != parsesBefore {
		t.Errorf("registry re-parsed: %d → %d", parsesBefore, parsesAfter)
	}
	if hits == 0 {
		t.Error("registry load did not hit the shared cache")
	}
}

// TestParseCacheContentKeyed is the stale-parse regression test: the cache
// is keyed by SourceKey (path + content hash), so an in-session edit must
// re-parse and serve the new AST, and reverting the edit must hit the
// still-cached original version.
func TestParseCacheContentKeyed(t *testing.T) {
	p := cacheProject()
	original := p.Files["/app/index.js"]
	before, err := p.Parse("/app/index.js")
	if err != nil {
		t.Fatal(err)
	}

	p.Files["/app/index.js"] = original + "\nexports.c = function c() { return 3; };"
	after, err := p.Parse("/app/index.js")
	if err != nil {
		t.Fatal(err)
	}
	if after == before {
		t.Fatal("edited file served the stale pre-edit AST")
	}
	if len(after.Body) == len(before.Body) {
		t.Error("re-parse did not see the appended statement")
	}
	parses, _ := p.ParseCounts()
	if parses != 2 {
		t.Errorf("parses = %d after one edit, want 2", parses)
	}

	// Reverting restores the old content hash: the original AST is still
	// cached under it, so no third parse happens.
	p.Files["/app/index.js"] = original
	reverted, err := p.Parse("/app/index.js")
	if err != nil {
		t.Fatal(err)
	}
	if reverted != before {
		t.Error("reverted file did not hit the original cached AST")
	}
	if parses, _ := p.ParseCounts(); parses != 2 {
		t.Errorf("parses = %d after revert, want still 2", parses)
	}
}

// TestPruneParses is the memory-bound regression test for long-lived
// sessions: edits strand superseded ASTs under their content keys, and
// PruneParses must evict exactly those — current file versions and
// built-in node: modules stay cached.
func TestPruneParses(t *testing.T) {
	p := cacheProject()
	if _, err := p.Parse("node:events"); err != nil {
		t.Fatal(err)
	}
	// Parse ten successive versions of index.js: each edit adds an AST.
	original := p.Files["/app/index.js"]
	for i := 0; i < 10; i++ {
		p.Files["/app/index.js"] = fmt.Sprintf("%s\nvar v%d = %d;", original, i, i)
		if _, err := p.Parse("/app/index.js"); err != nil {
			t.Fatal(err)
		}
	}
	if n := len(p.parseCache.progs); n != 11 {
		t.Fatalf("cache holds %d ASTs before prune, want 11 (10 versions + node:events)", n)
	}

	p.PruneParses()
	if n := len(p.parseCache.progs); n != 2 {
		t.Errorf("cache holds %d ASTs after prune, want 2 (current index.js + node:events)", n)
	}

	// The survivors are the right ones: re-parsing the current version and
	// the builtin is a pure cache hit.
	parsesBefore, _ := p.ParseCounts()
	if _, err := p.Parse("/app/index.js"); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Parse("node:events"); err != nil {
		t.Fatal(err)
	}
	if parsesAfter, _ := p.ParseCounts(); parsesAfter != parsesBefore {
		t.Errorf("prune evicted a live parse: %d → %d parses", parsesBefore, parsesAfter)
	}
}

// recordingStore is a ParseStore stub for observing store traffic.
type recordingStore struct {
	mu     sync.Mutex
	progs  map[string]*ast.Program
	loads  int
	stores int
}

func (r *recordingStore) LoadAST(key string) (*ast.Program, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.loads++
	prog, ok := r.progs[key]
	return prog, ok
}

func (r *recordingStore) StoreAST(key string, prog *ast.Program) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.stores++
	r.progs[key] = prog
}

// TestParseStoreBacksCache: a persistent store attached via SetParseStore
// serves parses to a fresh project (simulating a second process) and
// receives write-backs from fresh parses.
func TestParseStoreBacksCache(t *testing.T) {
	store := &recordingStore{progs: map[string]*ast.Program{}}

	p1 := cacheProject()
	p1.SetParseStore(store)
	if _, err := p1.Parse("/app/index.js"); err != nil {
		t.Fatal(err)
	}
	if store.stores != 1 {
		t.Errorf("stores = %d after one fresh parse, want 1", store.stores)
	}

	p2 := cacheProject()
	p2.SetParseStore(store)
	prog, err := p2.Parse("/app/index.js")
	if err != nil {
		t.Fatal(err)
	}
	if parses, hits := p2.ParseCounts(); parses != 0 || hits != 1 {
		t.Errorf("second project: parses=%d hits=%d, want 0/1 (served by the store)", parses, hits)
	}
	if prog != store.progs[SourceKey("/app/index.js", p2.Files["/app/index.js"])] {
		t.Error("second project did not return the store's AST")
	}
}
