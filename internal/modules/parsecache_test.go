package modules

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/interp"
)

func cacheProject() *Project {
	return &Project{
		Name: "cache-test",
		Files: map[string]string{
			"/app/index.js": "exports.a = function a() { return 1; };",
			"/app/util.js":  "exports.b = function b() { return 2; };",
		},
		MainEntries: []string{"/app/index.js"},
	}
}

func TestProjectParseCaching(t *testing.T) {
	p := cacheProject()
	p1, err := p.Parse("/app/index.js")
	if err != nil {
		t.Fatal(err)
	}
	p2, err := p.Parse("/app/index.js")
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Error("repeat Parse returned a different *ast.Program")
	}
	parses, hits := p.ParseCounts()
	if parses != 1 || hits != 1 {
		t.Errorf("parses=%d hits=%d, want 1/1", parses, hits)
	}
}

func TestProjectParseNodeLib(t *testing.T) {
	p := cacheProject()
	if _, err := p.Parse("node:events"); err != nil {
		t.Fatalf("node: lib module should parse via the cache: %v", err)
	}
	if _, err := p.Parse("/no/such.js"); !errors.Is(err, ErrNoSource) {
		t.Errorf("missing file: got %v, want ErrNoSource", err)
	}
}

// TestProjectParseConcurrent hammers one project's cache from many
// goroutines; under -race this validates the concurrent-reader guarantee,
// and the counters validate exactly-once parsing.
func TestProjectParseConcurrent(t *testing.T) {
	p := cacheProject()
	paths := []string{"/app/index.js", "/app/util.js", "node:events", "node:path"}
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				path := paths[(g+i)%len(paths)]
				if _, err := p.Parse(path); err != nil {
					t.Errorf("%s: %v", path, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	parses, hits := p.ParseCounts()
	if parses != int64(len(paths)) {
		t.Errorf("parses = %d, want exactly %d (one per file)", parses, len(paths))
	}
	if parses+hits != 16*50 {
		t.Errorf("parses+hits = %d, want %d", parses+hits, 16*50)
	}
}

// TestRegistryUsesSharedCache checks that module execution parses through
// the project cache rather than a private one.
func TestRegistryUsesSharedCache(t *testing.T) {
	p := cacheProject()
	// Pre-parse, then load through a registry: no new parse of index.js.
	if _, err := p.Parse("/app/index.js"); err != nil {
		t.Fatal(err)
	}
	parsesBefore, _ := p.ParseCounts()
	r := NewRegistry(p, interp.New(interp.Options{}))
	if _, err := r.Load("/app/index.js"); err != nil {
		t.Fatal(err)
	}
	parsesAfter, hits := p.ParseCounts()
	if parsesAfter != parsesBefore {
		t.Errorf("registry re-parsed: %d → %d", parsesBefore, parsesAfter)
	}
	if hits == 0 {
		t.Error("registry load did not hit the shared cache")
	}
}
