package modules

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// LoadDir reads a project from a directory on disk: every .js file becomes
// a module, with paths rooted at "/". A node_modules directory at the root
// holds dependency packages, as in a real checkout. Entry modules are, in
// order of preference: main.js, index.js, server.js, app.js at the root;
// test entries are .js files under test/ or ending in .test.js.
func LoadDir(root string) (*Project, error) {
	files := map[string]string{}
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() || !strings.HasSuffix(path, ".js") {
			return nil
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		virtual := "/" + filepath.ToSlash(rel)
		if !strings.HasPrefix(virtual, "/node_modules/") {
			virtual = "/app" + virtual
		}
		files[virtual] = string(src)
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("modules: loading %s: %w", root, err)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("modules: no .js files under %s", root)
	}
	p := &Project{
		Name:       filepath.Base(root),
		Files:      files,
		MainPrefix: "/app",
	}
	for _, cand := range []string{"/app/main.js", "/app/index.js", "/app/server.js", "/app/app.js"} {
		if _, ok := files[cand]; ok {
			p.MainEntries = []string{cand}
			break
		}
	}
	if len(p.MainEntries) == 0 {
		// Fall back to every root-level module.
		var roots []string
		for f := range files {
			if strings.HasPrefix(f, "/app/") && strings.Count(f, "/") == 2 {
				roots = append(roots, f)
			}
		}
		sort.Strings(roots)
		p.MainEntries = roots
	}
	var tests []string
	for f := range files {
		if strings.HasPrefix(f, "/app/test/") || strings.HasSuffix(f, ".test.js") {
			tests = append(tests, f)
		}
	}
	sort.Strings(tests)
	p.TestEntries = tests
	return p, nil
}

// WriteDir materializes an in-memory project under root on disk (the
// inverse of LoadDir, used by tooling and tests).
func (p *Project) WriteDir(root string) error {
	for path, src := range p.Files {
		rel := strings.TrimPrefix(path, "/app/")
		if strings.HasPrefix(path, "/node_modules/") {
			rel = strings.TrimPrefix(path, "/")
		}
		full := filepath.Join(root, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
			return err
		}
		if err := os.WriteFile(full, []byte(src), 0o644); err != nil {
			return err
		}
	}
	return nil
}
