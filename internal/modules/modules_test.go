package modules

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/interp"
	"repro/internal/value"
)

func testProject() *Project {
	return &Project{
		Name: "t",
		Files: map[string]string{
			"/app/index.js":                  "var lib = require('mylib');\nvar rel = require('./util');\nmodule.exports = lib.x + rel.y;",
			"/app/util.js":                   "exports.y = 2;",
			"/app/sub/deep.js":               "module.exports = require('../util');",
			"/node_modules/mylib/index.js":   "exports.x = 1;",
			"/node_modules/single.js":        "module.exports = 'single';",
			"/node_modules/withmain/main.js": "module.exports = 'main';",
		},
		MainEntries: []string{"/app/index.js"},
		MainPrefix:  "/app",
	}
}

func TestResolve(t *testing.T) {
	p := testProject()
	cases := []struct {
		from, name, want string
	}{
		{"/app/index.js", "./util", "/app/util.js"},
		{"/app/index.js", "./util.js", "/app/util.js"},
		{"/app/sub/deep.js", "../util", "/app/util.js"},
		{"/app/index.js", "mylib", "/node_modules/mylib/index.js"},
		{"/app/index.js", "single", "/node_modules/single.js"},
		{"/app/index.js", "withmain", "/node_modules/withmain/main.js"},
		{"/app/index.js", "events", "node:events"},
		{"/app/index.js", "node:events", "node:events"},
		{"/app/index.js", "fs", "node:fs"},
	}
	for _, c := range cases {
		got, err := Resolve(p, c.from, c.name)
		if err != nil || got != c.want {
			t.Errorf("Resolve(%s, %s) = %q, %v; want %q", c.from, c.name, got, err, c.want)
		}
	}
	if _, err := Resolve(p, "/app/index.js", "./missing"); err == nil {
		t.Error("expected error for missing relative module")
	}
	if _, err := Resolve(p, "/app/index.js", "ghost-package"); err == nil {
		t.Error("expected error for missing package")
	}
}

func TestLoadAndCache(t *testing.T) {
	p := testProject()
	it := interp.New(interp.Options{})
	r := NewRegistry(p, it)
	v, err := r.Load("/app/index.js")
	if err != nil {
		t.Fatal(err)
	}
	if n, ok := v.(value.Number); !ok || n != 3 {
		t.Errorf("exports = %v, want 3", v)
	}
	// Loading again returns the cached value.
	v2, err := r.Load("/app/index.js")
	if err != nil || !value.StrictEquals(v, v2) {
		t.Error("cache miss on second load")
	}
}

func TestModuleExportsReassignment(t *testing.T) {
	p := &Project{
		Files: map[string]string{
			"/app/a.js": "module.exports = function theFunc() { return 7; };",
			"/app/b.js": "var f = require('./a');\nmodule.exports = f();",
		},
	}
	it := interp.New(interp.Options{})
	r := NewRegistry(p, it)
	v, err := r.Load("/app/b.js")
	if err != nil {
		t.Fatal(err)
	}
	if n, ok := v.(value.Number); !ok || n != 7 {
		t.Errorf("got %v", v)
	}
}

func TestCyclicRequire(t *testing.T) {
	p := &Project{
		Files: map[string]string{
			"/app/a.js": "exports.name = 'a';\nvar b = require('./b');\nexports.partner = b.name;",
			"/app/b.js": "var a = require('./a');\nexports.name = 'b';\nexports.sawPartial = a.name;",
		},
	}
	it := interp.New(interp.Options{})
	r := NewRegistry(p, it)
	v, err := r.Load("/app/a.js")
	if err != nil {
		t.Fatal(err)
	}
	obj := v.(*value.Object)
	if got := obj.GetOwn("partner"); got == nil || got.Value != value.Value(value.String("b")) {
		t.Errorf("partner = %+v", got)
	}
	// b observed a's partially initialized exports (Node semantics).
	bv, _ := r.Load("/app/b.js")
	bobj := bv.(*value.Object)
	if got := bobj.GetOwn("sawPartial"); got == nil || got.Value != value.Value(value.String("a")) {
		t.Errorf("sawPartial = %+v", got)
	}
}

func TestNodeBuiltinModules(t *testing.T) {
	p := &Project{
		Files: map[string]string{
			"/app/index.js": `
var EventEmitter = require('events');
var path = require('path');
var util = require('util');
var e = new EventEmitter();
var got = null;
e.on('x', function(v) { got = v; });
e.emit('x', 42);
module.exports = {
  got: got,
  joined: path.join('/a', 'b', '../c'),
  fmt: util.format('%s=%d', 'n', 5),
  base: path.basename('/x/y.js', '.js'),
  ext: path.extname('/x/y.tar.gz')
};
`,
		},
	}
	it := interp.New(interp.Options{})
	r := NewRegistry(p, it)
	v, err := r.Load("/app/index.js")
	if err != nil {
		t.Fatal(err)
	}
	obj := v.(*value.Object)
	check := func(key string, want value.Value) {
		t.Helper()
		p := obj.GetOwn(key)
		if p == nil || !value.StrictEquals(p.Value, want) {
			t.Errorf("%s = %+v, want %v", key, p, want)
		}
	}
	check("got", value.Number(42))
	check("joined", value.String("/a/c"))
	check("fmt", value.String("n=5"))
	check("base", value.String("y"))
	check("ext", value.String(".gz"))
}

func TestEventEmitterOnceAndRemove(t *testing.T) {
	p := &Project{
		Files: map[string]string{
			"/app/index.js": `
var EventEmitter = require('events');
var e = new EventEmitter();
var count = 0;
function inc() { count++; }
e.once('t', inc);
e.emit('t');
e.emit('t');
var onceCount = count;
var e2 = new EventEmitter();
function h() { count = count + 10; }
e2.on('u', h);
e2.removeListener('u', h);
e2.emit('u');
module.exports = { onceCount: onceCount, final: count };
`,
		},
	}
	it := interp.New(interp.Options{})
	r := NewRegistry(p, it)
	v, err := r.Load("/app/index.js")
	if err != nil {
		t.Fatal(err)
	}
	obj := v.(*value.Object)
	if p := obj.GetOwn("onceCount"); !value.StrictEquals(p.Value, value.Number(1)) {
		t.Errorf("once fired %v times", value.ToString(p.Value))
	}
	if p := obj.GetOwn("final"); !value.StrictEquals(p.Value, value.Number(1)) {
		t.Errorf("removed listener fired: %v", value.ToString(p.Value))
	}
}

func TestSandboxMocks(t *testing.T) {
	p := &Project{
		Files: map[string]string{
			"/app/index.js": "var fs = require('fs');\nmodule.exports = fs;",
		},
	}
	it := interp.New(interp.Options{Proxy: true, Lenient: true})
	r := NewRegistry(p, it)
	r.Sandbox = true
	v, err := r.Load("/app/index.js")
	if err != nil {
		t.Fatal(err)
	}
	obj, ok := v.(*value.Object)
	if !ok || obj.Class != "Mock" {
		t.Errorf("sandboxed fs = %v (%T)", v, v)
	}
}

func TestProjectHelpers(t *testing.T) {
	p := testProject()
	if !p.IsMainModule("/app/index.js") {
		t.Error("app module misclassified")
	}
	if p.IsMainModule("/node_modules/mylib/index.js") {
		t.Error("dependency misclassified")
	}
	pkgs := p.Packages()
	if len(pkgs) != 4 { // <main>, mylib, single, withmain
		t.Errorf("packages = %v", pkgs)
	}
	if p.CodeSize() == 0 {
		t.Error("code size zero")
	}
	paths := p.SortedPaths()
	for i := 1; i < len(paths); i++ {
		if paths[i-1] >= paths[i] {
			t.Error("paths not sorted")
		}
	}
}

func TestLoadDirRoundTrip(t *testing.T) {
	dir := t.TempDir()
	p := testProject()
	if err := p.WriteDir(dir); err != nil {
		t.Fatal(err)
	}
	// Sanity: files landed where expected.
	if _, err := os.Stat(filepath.Join(dir, "index.js")); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Files) != len(p.Files) {
		t.Errorf("file count %d, want %d", len(loaded.Files), len(p.Files))
	}
	for path, src := range p.Files {
		if loaded.Files[path] != src {
			t.Errorf("%s differs after round-trip", path)
		}
	}
	if len(loaded.MainEntries) != 1 || loaded.MainEntries[0] != "/app/index.js" {
		t.Errorf("entries = %v", loaded.MainEntries)
	}
	// Run the loaded project.
	it := interp.New(interp.Options{})
	r := NewRegistry(loaded, it)
	if err := r.LoadEntries(); err != nil {
		t.Fatal(err)
	}
}

func TestLoadDirErrors(t *testing.T) {
	if _, err := LoadDir(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("expected error for missing dir")
	}
	empty := t.TempDir()
	if _, err := LoadDir(empty); err == nil || !strings.Contains(err.Error(), "no .js files") {
		t.Errorf("err = %v", err)
	}
}

func TestRequireErrorIsCatchable(t *testing.T) {
	p := &Project{
		Files: map[string]string{
			"/app/index.js": `
var ok = "no";
try {
  require('./does-not-exist');
} catch (e) {
  ok = "caught";
}
module.exports = ok;
`,
		},
	}
	it := interp.New(interp.Options{})
	r := NewRegistry(p, it)
	v, err := r.Load("/app/index.js")
	if err != nil {
		t.Fatal(err)
	}
	if !value.StrictEquals(v, value.String("caught")) {
		t.Errorf("got %v", value.ToString(v))
	}
}
