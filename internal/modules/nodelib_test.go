package modules

import (
	"testing"

	"repro/internal/interp"
	"repro/internal/value"
)

// runModule loads the given entry source as /app/index.js and returns its
// exports.
func runModule(t *testing.T, src string) value.Value {
	t.Helper()
	p := &Project{Files: map[string]string{"/app/index.js": src}}
	it := interp.New(interp.Options{})
	r := NewRegistry(p, it)
	v, err := r.Load("/app/index.js")
	if err != nil {
		t.Fatalf("load: %v\nsource:\n%s", err, src)
	}
	return v
}

func field(t *testing.T, v value.Value, key string) value.Value {
	t.Helper()
	o, ok := v.(*value.Object)
	if !ok {
		t.Fatalf("exports is %T, not an object", v)
	}
	p := o.GetOwn(key)
	if p == nil {
		t.Fatalf("missing export %q", key)
	}
	return p.Value
}

func wantEq(t *testing.T, got, want value.Value, what string) {
	t.Helper()
	if !value.StrictEquals(got, want) {
		t.Errorf("%s = %v, want %v", what, value.ToString(got), value.ToString(want))
	}
}

func TestQuerystringModule(t *testing.T) {
	v := runModule(t, `
var qs = require('querystring');
var parsed = qs.parse("a=1&b=two&empty");
exports.a = parsed.a;
exports.b = parsed.b;
exports.empty = parsed.empty;
exports.str = qs.stringify({x: 1, y: "z"});
exports.none = qs.parse("").a;
`)
	wantEq(t, field(t, v, "a"), value.String("1"), "a")
	wantEq(t, field(t, v, "b"), value.String("two"), "b")
	wantEq(t, field(t, v, "empty"), value.String(""), "empty")
	wantEq(t, field(t, v, "str"), value.String("x=1&y=z"), "stringify")
}

func TestURLModule(t *testing.T) {
	v := runModule(t, `
var url = require('url');
var u = url.parse("http://example.com/path/to?x=1");
exports.host = u.host;
exports.pathname = u.pathname;
exports.query = u.query;
exports.protocol = u.protocol;
exports.rt = url.format(u);
`)
	wantEq(t, field(t, v, "host"), value.String("example.com"), "host")
	wantEq(t, field(t, v, "pathname"), value.String("/path/to"), "pathname")
	wantEq(t, field(t, v, "query"), value.String("x=1"), "query")
	wantEq(t, field(t, v, "protocol"), value.String("http:"), "protocol")
}

func TestBufferModule(t *testing.T) {
	v := runModule(t, `
var Buffer = require('buffer').Buffer;
var b = Buffer.from("hello");
exports.len = b.length;
exports.str = b.toString();
exports.isBuf = Buffer.isBuffer(b);
exports.notBuf = Buffer.isBuffer("x");
exports.cat = Buffer.concat([Buffer.from("ab"), Buffer.from("cd")]).toString();
exports.sliced = b.slice(1, 3).toString();
`)
	wantEq(t, field(t, v, "len"), value.Number(5), "len")
	wantEq(t, field(t, v, "str"), value.String("hello"), "str")
	wantEq(t, field(t, v, "isBuf"), value.Bool(true), "isBuf")
	wantEq(t, field(t, v, "notBuf"), value.Bool(false), "notBuf")
	wantEq(t, field(t, v, "cat"), value.String("abcd"), "concat")
	wantEq(t, field(t, v, "sliced"), value.String("el"), "slice")
}

func TestStreamModule(t *testing.T) {
	v := runModule(t, `
var Stream = require('stream');
var src = new Stream.Readable();
var dst = new Stream.Writable();
var seen = [];
dst.on('data', function(chunk) { seen.push(chunk); });
src.pipe(dst);
src.emit('data', 'chunk1');
src.emit('data', 'chunk2');
src.emit('end');
exports.count = seen.length;
exports.first = seen[0];
`)
	wantEq(t, field(t, v, "count"), value.Number(2), "piped chunks")
	wantEq(t, field(t, v, "first"), value.String("chunk1"), "first chunk")
}

func TestHTTPModuleShape(t *testing.T) {
	v := runModule(t, `
var http = require('http');
var handled = 0;
var server = http.createServer(function onReq(req, res) {
  handled++;
  res.writeHead(200, {});
  res.end("ok");
});
var listening = false;
server.listen(8080, function() { listening = true; });
// Drive a fake request through the emitter, as tests do.
var Req = http.IncomingMessage;
var Res = http.ServerResponse;
server.emit('request', new Req(), new Res());
exports.handled = handled;
exports.listening = listening;
exports.methods = http.METHODS.length;
`)
	wantEq(t, field(t, v, "handled"), value.Number(1), "handled")
	wantEq(t, field(t, v, "listening"), value.Bool(true), "listening")
	wantEq(t, field(t, v, "methods"), value.Number(7), "METHODS")
}

func TestAssertModule(t *testing.T) {
	v := runModule(t, `
var assert = require('assert');
var failures = 0;
function check(fn) {
  try { fn(); } catch (e) { failures++; }
}
check(function() { assert.ok(true); });
check(function() { assert.ok(false); });
check(function() { assert.equal(1, "1"); });
check(function() { assert.strictEqual(1, "1"); });
check(function() { assert.deepEqual({a: [1]}, {a: [1]}); });
check(function() { assert.throws(function() { throw new Error("x"); }); });
check(function() { assert.throws(function() {}); });
exports.failures = failures;
`)
	wantEq(t, field(t, v, "failures"), value.Number(3), "assert failures")
}

func TestCryptoAndOSModules(t *testing.T) {
	v := runModule(t, `
var crypto = require('crypto');
var os = require('os');
var h1 = crypto.createHash('sha1').update("abc").digest('hex');
var h2 = crypto.createHash('sha1').update("abc").digest('hex');
var h3 = crypto.createHash('sha1').update("abd").digest('hex');
exports.stable = h1 === h2;
exports.differs = h1 !== h3;
exports.bytes = crypto.randomBytes(4).length;
exports.platform = os.platform();
exports.eol = os.EOL;
`)
	wantEq(t, field(t, v, "stable"), value.Bool(true), "hash stability")
	wantEq(t, field(t, v, "differs"), value.Bool(true), "hash difference")
	wantEq(t, field(t, v, "bytes"), value.Number(4), "randomBytes length")
	wantEq(t, field(t, v, "platform"), value.String("linux"), "platform")
}

func TestChildProcessMock(t *testing.T) {
	v := runModule(t, `
var cp = require('child_process');
var called = false;
cp.exec("ls", function(err, stdout, stderr) { called = true; });
var p = cp.spawn("cmd", []);
exports.called = called;
exports.hasStdout = typeof p.stdout === "object";
`)
	wantEq(t, field(t, v, "called"), value.Bool(true), "exec callback")
	wantEq(t, field(t, v, "hasStdout"), value.Bool(true), "spawn stdout")
}

func TestNodeLibSourcesAllParse(t *testing.T) {
	// Every built-in module source must parse and load standalone.
	for _, path := range NodeLibPaths() {
		p := &Project{Files: map[string]string{
			"/app/index.js": "module.exports = require('" + path + "');",
		}}
		it := interp.New(interp.Options{})
		r := NewRegistry(p, it)
		if _, err := r.Load("/app/index.js"); err != nil {
			t.Errorf("%s failed to load: %v", path, err)
		}
	}
}
