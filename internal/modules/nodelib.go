package modules

// nodeLibSources holds the JavaScript implementations of the Node.js
// built-in modules this runtime supports. Pure modules (events, util, path,
// assert, querystring) are real JS so their functions take part in analysis
// exactly like dependency code — e.g. EventEmitter.prototype methods show
// up as function definitions with locations, as in the paper's motivating
// example. External modules (fs, net, http, …) are minimal stubs in
// concrete mode and are replaced by sandbox mocks during approximate
// interpretation.
var nodeLibSources = map[string]string{
	"node:events": `
function EventEmitter() {
  this._events = {};
}
EventEmitter.prototype.on = function(type, listener) {
  if (!this._events) this._events = {};
  if (!this._events[type]) this._events[type] = [];
  this._events[type].push(listener);
  return this;
};
EventEmitter.prototype.addListener = function(type, listener) {
  return this.on(type, listener);
};
EventEmitter.prototype.once = function(type, listener) {
  var fired = false;
  var self = this;
  function wrapper() {
    if (!fired) {
      fired = true;
      self.removeListener(type, wrapper);
      listener.apply(self, arguments);
    }
  }
  wrapper.listener = listener;
  return this.on(type, wrapper);
};
EventEmitter.prototype.removeListener = function(type, listener) {
  if (!this._events || !this._events[type]) return this;
  var list = this._events[type];
  var kept = [];
  for (var i = 0; i < list.length; i++) {
    if (list[i] !== listener && list[i].listener !== listener) kept.push(list[i]);
  }
  this._events[type] = kept;
  return this;
};
EventEmitter.prototype.removeAllListeners = function(type) {
  if (!this._events) return this;
  if (type === undefined) {
    this._events = {};
  } else {
    this._events[type] = [];
  }
  return this;
};
EventEmitter.prototype.emit = function(type) {
  if (!this._events || !this._events[type]) return false;
  var list = this._events[type].slice();
  var args = [];
  for (var i = 1; i < arguments.length; i++) args.push(arguments[i]);
  for (var j = 0; j < list.length; j++) {
    list[j].apply(this, args);
  }
  return list.length > 0;
};
EventEmitter.prototype.listeners = function(type) {
  if (!this._events || !this._events[type]) return [];
  return this._events[type].slice();
};
EventEmitter.prototype.listenerCount = function(type) {
  return this.listeners(type).length;
};
module.exports = EventEmitter;
module.exports.EventEmitter = EventEmitter;
`,

	"node:util": `
exports.inherits = function(ctor, superCtor) {
  ctor.super_ = superCtor;
  ctor.prototype = Object.create(superCtor.prototype, {
    constructor: { value: ctor, enumerable: false, writable: true }
  });
};
exports.format = function(f) {
  var args = arguments;
  var i = 1;
  if (typeof f !== 'string') {
    var parts = [];
    for (var j = 0; j < args.length; j++) parts.push(String(args[j]));
    return parts.join(' ');
  }
  var out = '';
  var k = 0;
  while (k < f.length) {
    var c = f.charAt(k);
    if (c === '%' && k + 1 < f.length) {
      var d = f.charAt(k + 1);
      if (d === 's' || d === 'd' || d === 'j' || d === 'i') {
        out = out + String(args[i]);
        i = i + 1;
        k = k + 2;
        continue;
      }
    }
    out = out + c;
    k = k + 1;
  }
  return out;
};
exports.isArray = function(v) { return Array.isArray(v); };
exports.isFunction = function(v) { return typeof v === 'function'; };
exports.isString = function(v) { return typeof v === 'string'; };
exports.isObject = function(v) { return v !== null && typeof v === 'object'; };
exports.isUndefined = function(v) { return v === undefined; };
exports.deprecate = function(fn, msg) { return fn; };
exports.promisify = function(fn) { return fn; };
`,

	"node:path": `
function normalizeParts(parts) {
  var out = [];
  for (var i = 0; i < parts.length; i++) {
    var p = parts[i];
    if (p === '' || p === '.') continue;
    if (p === '..') {
      if (out.length > 0 && out[out.length - 1] !== '..') out.pop();
      else out.push('..');
    } else {
      out.push(p);
    }
  }
  return out;
}
exports.sep = '/';
exports.join = function() {
  var parts = [];
  for (var i = 0; i < arguments.length; i++) {
    var a = arguments[i];
    if (a !== '' && a !== undefined) parts.push(String(a));
  }
  var joined = parts.join('/');
  var abs = joined.charAt(0) === '/';
  var norm = normalizeParts(joined.split('/')).join('/');
  if (abs) return '/' + norm;
  if (norm === '') return '.';
  return norm;
};
exports.resolve = function() {
  var resolved = '';
  for (var i = 0; i < arguments.length; i++) {
    var p = String(arguments[i]);
    if (p.charAt(0) === '/') resolved = p;
    else if (resolved === '') resolved = '/' + p;
    else resolved = resolved + '/' + p;
  }
  return '/' + normalizeParts(resolved.split('/')).join('/');
};
exports.dirname = function(p) {
  p = String(p);
  var i = p.lastIndexOf('/');
  if (i < 0) return '.';
  if (i === 0) return '/';
  return p.slice(0, i);
};
exports.basename = function(p, ext) {
  p = String(p);
  var i = p.lastIndexOf('/');
  var base = i < 0 ? p : p.slice(i + 1);
  if (ext && base.endsWith(ext)) base = base.slice(0, base.length - ext.length);
  return base;
};
exports.extname = function(p) {
  p = String(p);
  var base = exports.basename(p);
  var i = base.lastIndexOf('.');
  if (i <= 0) return '';
  return base.slice(i);
};
exports.isAbsolute = function(p) { return String(p).charAt(0) === '/'; };
exports.relative = function(from, to) { return String(to); };
exports.normalize = function(p) {
  p = String(p);
  var abs = p.charAt(0) === '/';
  var norm = normalizeParts(p.split('/')).join('/');
  if (abs) return '/' + norm;
  return norm === '' ? '.' : norm;
};
`,

	"node:assert": `
function AssertionError(message) {
  var e = new Error(message);
  e.name = 'AssertionError';
  return e;
}
function assert(cond, message) {
  if (!cond) throw AssertionError(message || 'assertion failed');
}
assert.ok = assert;
assert.equal = function(a, b, message) {
  if (a != b) throw AssertionError(message || (a + ' != ' + b));
};
assert.strictEqual = function(a, b, message) {
  if (a !== b) throw AssertionError(message || (a + ' !== ' + b));
};
assert.notEqual = function(a, b, message) {
  if (a == b) throw AssertionError(message || (a + ' == ' + b));
};
assert.deepEqual = function(a, b, message) {
  if (JSON.stringify(a) !== JSON.stringify(b)) {
    throw AssertionError(message || 'not deeply equal');
  }
};
assert.throws = function(fn, message) {
  var threw = false;
  try { fn(); } catch (e) { threw = true; }
  if (!threw) throw AssertionError(message || 'missing expected exception');
};
assert.fail = function(message) { throw AssertionError(message || 'failed'); };
module.exports = assert;
`,

	"node:querystring": `
exports.parse = function(qs) {
  var out = {};
  if (!qs) return out;
  var pairs = String(qs).split('&');
  for (var i = 0; i < pairs.length; i++) {
    var kv = pairs[i].split('=');
    if (kv[0] !== '') out[kv[0]] = kv.length > 1 ? kv[1] : '';
  }
  return out;
};
exports.stringify = function(obj) {
  var parts = [];
  var keys = Object.keys(obj);
  for (var i = 0; i < keys.length; i++) {
    parts.push(keys[i] + '=' + String(obj[keys[i]]));
  }
  return parts.join('&');
};
`,

	"node:url": `
exports.parse = function(u) {
  u = String(u);
  var out = { href: u, protocol: null, host: null, pathname: null, query: null };
  var i = u.indexOf('://');
  var rest = u;
  if (i >= 0) {
    out.protocol = u.slice(0, i + 1);
    rest = u.slice(i + 3);
  }
  var q = rest.indexOf('?');
  if (q >= 0) {
    out.query = rest.slice(q + 1);
    rest = rest.slice(0, q);
  }
  var s = rest.indexOf('/');
  if (s >= 0) {
    out.host = rest.slice(0, s);
    out.pathname = rest.slice(s);
  } else {
    out.host = rest;
    out.pathname = '/';
  }
  return out;
};
exports.format = function(o) {
  return (o.protocol ? o.protocol + '//' : '') + (o.host || '') + (o.pathname || '') + (o.query ? '?' + o.query : '');
};
`,

	"node:stream": `
var EventEmitter = require('events');
var util = require('util');
function Stream() {
  EventEmitter.call(this);
}
util.inherits(Stream, EventEmitter);
Stream.prototype.pipe = function(dest) {
  var source = this;
  source.on('data', function(chunk) {
    if (dest.write) dest.write(chunk);
  });
  source.on('end', function() {
    if (dest.end) dest.end();
  });
  return dest;
};
function Readable() { Stream.call(this); }
util.inherits(Readable, Stream);
Readable.prototype.read = function() { return null; };
function Writable() { Stream.call(this); }
util.inherits(Writable, Stream);
Writable.prototype.write = function(chunk) { this.emit('data', chunk); return true; };
Writable.prototype.end = function() { this.emit('finish'); this.emit('end'); };
module.exports = Stream;
module.exports.Stream = Stream;
module.exports.Readable = Readable;
module.exports.Writable = Writable;
`,

	"node:buffer": `
function Buffer(data) {
  this.data = data === undefined ? '' : String(data);
  this.length = this.data.length;
}
Buffer.from = function(data) { return new Buffer(data); };
Buffer.alloc = function(n) { return new Buffer(''); };
Buffer.isBuffer = function(b) { return b instanceof Buffer; };
Buffer.concat = function(list) {
  var s = '';
  for (var i = 0; i < list.length; i++) s = s + list[i].toString();
  return new Buffer(s);
};
Buffer.prototype.toString = function() { return this.data; };
Buffer.prototype.slice = function(a, b) { return new Buffer(this.data.slice(a, b)); };
module.exports = { Buffer: Buffer };
module.exports.Buffer = Buffer;
`,

	// --- external-world modules: minimal stubs for concrete execution; the
	// sandbox replaces them with mocks during approximate interpretation.

	"node:fs": `
exports.readFileSync = function(path, opts) { return ''; };
exports.writeFileSync = function(path, data) { return undefined; };
exports.existsSync = function(path) { return false; };
exports.readFile = function(path, opts, cb) {
  var callback = typeof opts === 'function' ? opts : cb;
  if (callback) callback(null, '');
};
exports.writeFile = function(path, data, cb) { if (cb) cb(null); };
exports.readdirSync = function(path) { return []; };
exports.statSync = function(path) {
  return { isDirectory: function() { return false; }, isFile: function() { return true; } };
};
exports.stat = function(path, cb) { if (cb) cb(null, exports.statSync(path)); };
exports.mkdirSync = function(path) { return undefined; };
exports.unlinkSync = function(path) { return undefined; };
exports.createReadStream = function(path) {
  var Stream = require('stream');
  return new Stream.Readable();
};
exports.createWriteStream = function(path) {
  var Stream = require('stream');
  return new Stream.Writable();
};
`,

	"node:net": `
var EventEmitter = require('events');
var util = require('util');
function Socket() { EventEmitter.call(this); }
util.inherits(Socket, EventEmitter);
Socket.prototype.write = function(data) { return true; };
Socket.prototype.end = function() { this.emit('close'); };
function Server(handler) {
  EventEmitter.call(this);
  if (handler) this.on('connection', handler);
}
util.inherits(Server, EventEmitter);
Server.prototype.listen = function(port, cb) {
  var callback = typeof port === 'function' ? port : cb;
  if (callback) callback();
  this.emit('listening');
  return this;
};
Server.prototype.close = function(cb) {
  if (cb) cb();
  this.emit('close');
  return this;
};
Server.prototype.address = function() { return { port: 0 }; };
exports.Socket = Socket;
exports.Server = Server;
exports.createServer = function(handler) { return new Server(handler); };
exports.connect = function() { return new Socket(); };
exports.createConnection = exports.connect;
`,

	"node:http": `
var EventEmitter = require('events');
var util = require('util');
function IncomingMessage() {
  EventEmitter.call(this);
  this.url = '/';
  this.method = 'GET';
  this.headers = {};
}
util.inherits(IncomingMessage, EventEmitter);
function ServerResponse() {
  EventEmitter.call(this);
  this.statusCode = 200;
  this.headers = {};
}
util.inherits(ServerResponse, EventEmitter);
ServerResponse.prototype.setHeader = function(name, v) { this.headers[name] = v; };
ServerResponse.prototype.getHeader = function(name) { return this.headers[name]; };
ServerResponse.prototype.writeHead = function(code, headers) {
  this.statusCode = code;
  return this;
};
ServerResponse.prototype.write = function(data) { return true; };
ServerResponse.prototype.end = function(data) { this.emit('finish'); };
function Server(handler) {
  EventEmitter.call(this);
  if (handler) this.on('request', handler);
}
util.inherits(Server, EventEmitter);
Server.prototype.listen = function(port, cb) {
  var callback = typeof port === 'function' ? port : cb;
  if (callback) callback();
  this.emit('listening');
  return this;
};
Server.prototype.close = function(cb) {
  if (cb) cb();
  this.emit('close');
  return this;
};
Server.prototype.address = function() { return { port: 0 }; };
exports.Server = Server;
exports.IncomingMessage = IncomingMessage;
exports.ServerResponse = ServerResponse;
exports.createServer = function(handler) { return new Server(handler); };
exports.request = function(opts, cb) {
  var res = new IncomingMessage();
  if (cb) cb(res);
  var req = new EventEmitter();
  req.end = function() {};
  req.write = function() {};
  return req;
};
exports.get = exports.request;
exports.METHODS = ['GET', 'POST', 'PUT', 'DELETE', 'PATCH', 'HEAD', 'OPTIONS'];
`,

	"node:https": `
module.exports = require('http');
`,

	"node:crypto": `
var state = 12345;
exports.randomBytes = function(n) {
  var Buffer = require('buffer').Buffer;
  var s = '';
  for (var i = 0; i < n; i++) {
    state = (state * 1103515245 + 12345) % 2147483648;
    s = s + String.fromCharCode(state % 256);
  }
  return Buffer.from(s);
};
exports.createHash = function(alg) {
  var data = '';
  return {
    update: function(d) { data = data + String(d); return this; },
    digest: function(enc) {
      var h = 0;
      for (var i = 0; i < data.length; i++) {
        h = (h * 31 + data.charCodeAt(i)) % 4294967296;
      }
      return h.toString(16);
    }
  };
};
`,

	"node:os": `
exports.platform = function() { return 'linux'; };
exports.hostname = function() { return 'localhost'; };
exports.tmpdir = function() { return '/tmp'; };
exports.homedir = function() { return '/home/user'; };
exports.EOL = '\n';
exports.cpus = function() { return []; };
`,

	"node:child_process": `
exports.exec = function(cmd, opts, cb) {
  var callback = typeof opts === 'function' ? opts : cb;
  if (callback) callback(null, '', '');
  var EventEmitter = require('events');
  return new EventEmitter();
};
exports.execSync = function(cmd) { return ''; };
exports.spawn = function(cmd, args) {
  var EventEmitter = require('events');
  var p = new EventEmitter();
  p.stdout = new EventEmitter();
  p.stderr = new EventEmitter();
  p.kill = function() {};
  return p;
};
exports.fork = exports.spawn;
`,

	"node:zlib": `
exports.gzipSync = function(data) { return data; };
exports.gunzipSync = function(data) { return data; };
exports.deflateSync = function(data) { return data; };
exports.inflateSync = function(data) { return data; };
exports.createGzip = function() {
  var Stream = require('stream');
  return new Stream.Writable();
};
`,

	"node:dns": `
exports.lookup = function(host, cb) { if (cb) cb(null, '127.0.0.1', 4); };
exports.resolve = function(host, cb) { if (cb) cb(null, ['127.0.0.1']); };
`,

	"node:readline": `
var EventEmitter = require('events');
exports.createInterface = function(opts) {
  var rl = new EventEmitter();
  rl.question = function(q, cb) { if (cb) cb(''); };
  rl.close = function() { rl.emit('close'); };
  return rl;
};
`,

	"node:tls":     "module.exports = require('net');\n",
	"node:dgram":   "exports.createSocket = function() { var E = require('events'); return new E(); };\n",
	"node:cluster": "exports.isMaster = true;\nexports.isPrimary = true;\nexports.fork = function() { var E = require('events'); return new E(); };\n",
}

// NodeLibPaths returns the virtual paths of the built-in JS modules, for
// callers (like the static analysis) that want to include them in
// whole-program analysis.
func NodeLibPaths() []string {
	out := make([]string, 0, len(nodeLibSources))
	for p := range nodeLibSources {
		out = append(out, p)
	}
	return out
}

// NodeLibSource returns the source of a built-in module ("" if absent).
func NodeLibSource(path string) string { return nodeLibSources[path] }

// IsExternalModule reports whether name is an external-world Node module
// (sandbox-mocked during approximate interpretation).
func IsExternalModule(name string) bool { return externalModules[name] }
