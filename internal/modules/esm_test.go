package modules

import (
	"testing"

	"repro/internal/interp"
	"repro/internal/value"
)

func TestESModuleSyntax(t *testing.T) {
	p := &Project{
		Files: map[string]string{
			"/app/lib.js": `export function add(a, b) { return a + b; }
export var version = "1.2";
var hidden = 99;
export {hidden as shown};
export default function mainFn(x) { return x * 2; };
`,
			"/app/index.js": `import mainFn from './lib';
import {add, version, shown} from './lib';
import * as lib from './lib';
import './side';
module.exports = {
  doubled: mainFn(21),
  sum: add(1, 2),
  version: version,
  shown: shown,
  nsAdd: lib.add(2, 3),
  sideRan: globalThis.sideEffect
};
`,
			"/app/side.js": `globalThis.sideEffect = "ran";`,
		},
		MainEntries: []string{"/app/index.js"},
	}
	it := interp.New(interp.Options{})
	r := NewRegistry(p, it)
	v, err := r.Load("/app/index.js")
	if err != nil {
		t.Fatal(err)
	}
	obj := v.(*value.Object)
	check := func(key string, want value.Value) {
		t.Helper()
		pr := obj.GetOwn(key)
		if pr == nil || !value.StrictEquals(pr.Value, want) {
			got := "<missing>"
			if pr != nil {
				got = value.ToString(pr.Value)
			}
			t.Errorf("%s = %v, want %v", key, got, value.ToString(want))
		}
	}
	check("doubled", value.Number(42))
	check("sum", value.Number(3))
	check("version", value.String("1.2"))
	check("shown", value.Number(99))
	check("nsAdd", value.Number(5))
	check("sideRan", value.String("ran"))
}

func TestESMDefaultInteropWithCJS(t *testing.T) {
	p := &Project{
		Files: map[string]string{
			"/app/cjs.js": `module.exports = function cjsMain() { return "cjs"; };`,
			"/app/index.js": `import fn from './cjs';
module.exports = fn();
`,
		},
	}
	it := interp.New(interp.Options{})
	r := NewRegistry(p, it)
	v, err := r.Load("/app/index.js")
	if err != nil {
		t.Fatal(err)
	}
	if !value.StrictEquals(v, value.String("cjs")) {
		t.Errorf("default import of CJS module = %v", value.ToString(v))
	}
}

func TestImportExportAsIdentifiers(t *testing.T) {
	// Outside module syntax positions, import/export stay ordinary names.
	p := &Project{
		Files: map[string]string{
			"/app/index.js": `var import_ = 1;
var export_ = 2;
var obj = { import: 3, export: 4 };
module.exports = import_ + export_ + obj.import + obj.export;
`,
		},
	}
	it := interp.New(interp.Options{})
	r := NewRegistry(p, it)
	v, err := r.Load("/app/index.js")
	if err != nil {
		t.Fatal(err)
	}
	if !value.StrictEquals(v, value.Number(10)) {
		t.Errorf("got %v", value.ToString(v))
	}
}
