// Package repro_test holds the benchmark harness: one testing.B benchmark
// per table and figure of the paper's evaluation (§5), plus micro-
// benchmarks of the pipeline phases. Each benchmark reports the headline
// quantity of its experiment via b.ReportMetric, so `go test -bench=.`
// regenerates the paper's numbers alongside timing data.
//
// The mapping between benchmarks and the paper's tables/figures is
// documented in DESIGN.md §4 and EXPERIMENTS.md.
package repro_test

import (
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/approx"
	"repro/internal/corpus"
	"repro/internal/dyncg"
	"repro/internal/experiments"
	"repro/internal/modules"
	"repro/internal/parser"
	"repro/internal/perf"
	"repro/internal/static"
)

// benchSlice returns a fixed, representative corpus slice so benchmark
// runtimes stay manageable; cmd/evaluate runs the full 141.
func benchSlice(n int) []*corpus.Benchmark {
	bs := corpus.WithDynCG()
	if n > len(bs) {
		n = len(bs)
	}
	return bs[:n]
}

// BenchmarkTable1Corpus regenerates Table 1: the benchmark inventory
// (packages, modules, functions, code size) of the dyn-CG projects.
func BenchmarkTable1Corpus(b *testing.B) {
	bs := corpus.WithDynCG()
	var fns, mods int
	for i := 0; i < b.N; i++ {
		fns, mods = 0, 0
		for _, bench := range bs {
			st, err := corpus.ComputeStats(bench)
			if err != nil {
				b.Fatal(err)
			}
			fns += st.Functions
			mods += st.Modules
		}
	}
	b.ReportMetric(float64(len(bs)), "projects")
	b.ReportMetric(float64(fns), "functions")
	b.ReportMetric(float64(mods), "modules")
}

// benchFigure runs baseline+extended over a slice and reports the averaged
// per-project improvement for one §5 metric.
func benchFigure(b *testing.B, metric func(base, ext *static.Result) (float64, float64), unit string) {
	b.Helper()
	bs := benchSlice(8)
	var avgBase, avgExt float64
	for i := 0; i < b.N; i++ {
		avgBase, avgExt = 0, 0
		for _, bench := range bs {
			ar, err := approx.Run(bench.Project, approx.Options{})
			if err != nil {
				b.Fatal(err)
			}
			base, err := static.Analyze(bench.Project, static.Options{Mode: static.Baseline})
			if err != nil {
				b.Fatal(err)
			}
			ext, err := static.Analyze(bench.Project, static.Options{Mode: static.WithHints, Hints: ar.Hints})
			if err != nil {
				b.Fatal(err)
			}
			mb, me := metric(base, ext)
			avgBase += mb
			avgExt += me
		}
		avgBase /= float64(len(bs))
		avgExt /= float64(len(bs))
	}
	b.ReportMetric(avgBase, "base-"+unit)
	b.ReportMetric(avgExt, "ext-"+unit)
}

// BenchmarkFigure4CallEdges regenerates Figure 4: call edges per program,
// baseline vs extended (paper: +55.1% on average).
func BenchmarkFigure4CallEdges(b *testing.B) {
	benchFigure(b, func(base, ext *static.Result) (float64, float64) {
		return float64(base.Metrics().CallEdges), float64(ext.Metrics().CallEdges)
	}, "edges")
}

// BenchmarkFigure5Reachable regenerates Figure 5: reachable functions
// (paper: +21.8%).
func BenchmarkFigure5Reachable(b *testing.B) {
	benchFigure(b, func(base, ext *static.Result) (float64, float64) {
		return float64(base.Metrics().ReachableFunctions), float64(ext.Metrics().ReachableFunctions)
	}, "reachable")
}

// BenchmarkFigure6Resolved regenerates Figure 6: % resolved call sites
// (paper: +17.7 points).
func BenchmarkFigure6Resolved(b *testing.B) {
	benchFigure(b, func(base, ext *static.Result) (float64, float64) {
		return base.Metrics().ResolvedPct, ext.Metrics().ResolvedPct
	}, "resolved-pct")
}

// BenchmarkFigure7Monomorphic regenerates Figure 7: % monomorphic call
// sites (paper: −1.5 points).
func BenchmarkFigure7Monomorphic(b *testing.B) {
	benchFigure(b, func(base, ext *static.Result) (float64, float64) {
		return base.Metrics().MonomorphicPct, ext.Metrics().MonomorphicPct
	}, "mono-pct")
}

// BenchmarkTable2RecallPrecision regenerates Table 2: call-edge recall and
// per-call precision against dynamic call graphs (paper: recall 75.9% →
// 88.1%, precision −1.5 points).
func BenchmarkTable2RecallPrecision(b *testing.B) {
	bs := benchSlice(8)
	var s experiments.Summary
	for i := 0; i < b.N; i++ {
		outs, err := experiments.RunCorpus(bs, true)
		if err != nil {
			b.Fatal(err)
		}
		s = experiments.Aggregate(outs)
	}
	b.ReportMetric(s.AvgRecallBase, "recall-base-pct")
	b.ReportMetric(s.AvgRecallExt, "recall-ext-pct")
	b.ReportMetric(s.AvgPrecBase, "prec-base-pct")
	b.ReportMetric(s.AvgPrecExt, "prec-ext-pct")
}

// BenchmarkTable3Times regenerates Table 3: running times of the baseline
// analysis, approximate interpretation, and extended analysis.
func BenchmarkTable3Times(b *testing.B) {
	bs := benchSlice(8)
	var approxMS, baseMS, extMS float64
	for i := 0; i < b.N; i++ {
		approxMS, baseMS, extMS = 0, 0, 0
		outs, err := experiments.RunCorpus(bs, false)
		if err != nil {
			b.Fatal(err)
		}
		for _, o := range outs {
			approxMS += float64(o.ApproxTime.Microseconds()) / 1000
			baseMS += float64(o.BaselineTime.Microseconds()) / 1000
			extMS += float64(o.ExtendedTime.Microseconds()) / 1000
		}
	}
	b.ReportMetric(approxMS, "approx-ms")
	b.ReportMetric(baseMS, "baseline-ms")
	b.ReportMetric(extMS, "extended-ms")
}

// BenchmarkVulnReachability regenerates the §5 vulnerability-reachability
// study (paper: 447 advisories; 52 reachable → 55).
func BenchmarkVulnReachability(b *testing.B) {
	bs := benchSlice(12)
	var vr experiments.VulnResult
	for i := 0; i < b.N; i++ {
		outs, err := experiments.RunCorpus(bs, false)
		if err != nil {
			b.Fatal(err)
		}
		vr, err = experiments.VulnStudy(bs, outs)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(vr.TotalVulns), "vulns")
	b.ReportMetric(float64(vr.ReachableBaseline), "reach-base")
	b.ReportMetric(float64(vr.ReachableExtended), "reach-ext")
}

// BenchmarkHintStats regenerates the §5 pre-analysis statistics: hints per
// project and fraction of functions visited (paper: median 1,492 hints,
// ~60% visited).
func BenchmarkHintStats(b *testing.B) {
	bs := benchSlice(12)
	var hintsTotal int
	var visited float64
	for i := 0; i < b.N; i++ {
		hintsTotal, visited = 0, 0
		for _, bench := range bs {
			ar, err := approx.Run(bench.Project, approx.Options{})
			if err != nil {
				b.Fatal(err)
			}
			hintsTotal += ar.Hints.Count()
			visited += ar.VisitedRatio()
		}
		visited /= float64(len(bs))
	}
	b.ReportMetric(float64(hintsTotal), "hints")
	b.ReportMetric(100*visited, "visited-pct")
}

// BenchmarkAblationRelationalHints regenerates the §4 design-choice
// comparison: relational [DPW] hints vs the name-only strawman.
func BenchmarkAblationRelationalHints(b *testing.B) {
	bs := benchSlice(6)
	var relMono, nameMono float64
	for i := 0; i < b.N; i++ {
		relMono, nameMono = 0, 0
		for _, bench := range bs {
			o, err := experiments.RunAblation(bench)
			if err != nil {
				b.Fatal(err)
			}
			relMono += o.RelationalMonomorphic
			nameMono += o.NameOnlyMonomorphic
		}
		relMono /= float64(len(bs))
		nameMono /= float64(len(bs))
	}
	b.ReportMetric(relMono, "mono-relational-pct")
	b.ReportMetric(nameMono, "mono-nameonly-pct")
}

// BenchmarkMotivatingExample runs the full pipeline on the paper's Fig. 1
// program (§5 compares against FAST here: 12.3% vs 98.5% recall).
func BenchmarkMotivatingExample(b *testing.B) {
	project := corpus.Motivating()
	var recallBase, recallExt float64
	for i := 0; i < b.N; i++ {
		o, err := experiments.RunBenchmark(&corpus.Benchmark{Project: project, HasDynCG: true}, true)
		if err != nil {
			b.Fatal(err)
		}
		recallBase, recallExt = o.BaseAcc.Recall, o.ExtAcc.Recall
	}
	b.ReportMetric(recallBase, "recall-base-pct")
	b.ReportMetric(recallExt, "recall-ext-pct")
}

// BenchmarkHintReuse measures the §6 "reusing approximate interpretation
// results" extension: analyzing many applications that share a library,
// with and without the per-package hint cache. The shared library is
// forcing-heavy (many function definitions with non-trivial bodies), the
// regime where the paper's reuse argument applies — when module top-level
// execution dominates instead, the cache cannot pay off, since every
// application run must execute the initialization code anyway.
func BenchmarkHintReuse(b *testing.B) {
	lib := heavyLibraryProject()
	apps := make([]*modules.Project, 6)
	for i := range apps {
		p := &modules.Project{
			Name:        fmt.Sprintf("heavy-app-%d", i),
			Files:       map[string]string{},
			MainEntries: []string{"/app/index.js"},
			MainPrefix:  "/app",
		}
		for path, src := range lib.Files {
			p.Files[path] = src
		}
		p.Files["/app/index.js"] = fmt.Sprintf(
			"var lib = require('heavy');\nexports.use%d = function use%d(x) { return lib.fn0(x); };\n", i, i)
		apps[i] = p
	}
	b.Run("no-cache", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, p := range apps {
				if _, err := approx.Run(p, approx.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("with-cache", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cache := approx.NewCache()
			for _, p := range apps {
				if _, err := approx.RunWithCache(p, cache, approx.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// heavyLibraryProject builds a dependency whose cost is dominated by
// forced execution of its many function definitions.
func heavyLibraryProject() *modules.Project {
	var sb strings.Builder
	for i := 0; i < 120; i++ {
		fmt.Fprintf(&sb, `exports.fn%d = function fn%d(x) {
  var acc = 0;
  for (var i = 0; i < 400; i++) { acc += i; }
  var table = {};
  table["k" + %d] = function inner%d(y) { return y + acc; };
  return table["k" + %d](x);
};
`, i, i, i, i, i)
	}
	return &modules.Project{
		Name:        "heavy-lib",
		Files:       map[string]string{"/node_modules/heavy/index.js": sb.String()},
		MainEntries: []string{"/node_modules/heavy/index.js"},
		MainPrefix:  "/node_modules/heavy",
	}
}

// BenchmarkIncrementalResume compares the combined baseline+extended
// analysis (static.AnalyzeBoth: solve the baseline once, inject the
// [DPR]/[DPW] hint deltas, resume to the extended fixpoint) against the
// legacy two-pass path (two from-scratch solves) on a corpus slice. The
// reported wall time is the baseline+extended cost only; approximate
// interpretation is precomputed outside the timed loop.
func BenchmarkIncrementalResume(b *testing.B) {
	bs := benchSlice(12)
	hintsFor := make([]*approx.Result, len(bs))
	for i, bench := range bs {
		ar, err := approx.Run(bench.Project, approx.Options{})
		if err != nil {
			b.Fatal(err)
		}
		hintsFor[i] = ar
	}
	b.Run("twopass", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for j, bench := range bs {
				if _, err := static.Analyze(bench.Project, static.Options{Mode: static.Baseline}); err != nil {
					b.Fatal(err)
				}
				if _, err := static.Analyze(bench.Project, static.Options{Mode: static.WithHints, Hints: hintsFor[j].Hints}); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("incremental", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for j, bench := range bs {
				if _, _, err := static.AnalyzeBoth(bench.Project, static.Options{Mode: static.WithHints, Hints: hintsFor[j].Hints}); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// BenchmarkPipelineParallel measures the parallel corpus driver against the
// sequential baseline on the same corpus slice, reporting wall time per
// worker count and the parse-cache hit rate. Fresh benchmark sets are built
// every iteration so each run starts with cold parse caches (the cache
// effect being measured is *within* a pipeline run, across its phases).
func BenchmarkPipelineParallel(b *testing.B) {
	const sliceSize = 12
	for _, workers := range []int{1, runtime.NumCPU()} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			var wallMS, hitRate float64
			for i := 0; i < b.N; i++ {
				bs := corpus.WithDynCG()[:sliceSize]
				perf.Global().Reset()
				start := time.Now()
				if _, err := experiments.RunCorpusOpts(bs, experiments.Options{WithDynCG: true, Workers: workers}); err != nil {
					b.Fatal(err)
				}
				wallMS = float64(time.Since(start).Microseconds()) / 1000
				hitRate = perf.Global().Snapshot().ParseHitRate
			}
			b.ReportMetric(wallMS, "wall-ms")
			b.ReportMetric(100*hitRate, "parse-hit-pct")
		})
	}
}

// ---------------------------------------------------------- phase micro-benches

// BenchmarkApproxInterpretation times the pre-analysis alone.
func BenchmarkApproxInterpretation(b *testing.B) {
	project := corpus.Motivating()
	for i := 0; i < b.N; i++ {
		if _, err := approx.Run(project, approx.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBaselineAnalysis times the baseline static analysis alone.
func BenchmarkBaselineAnalysis(b *testing.B) {
	project := corpus.Motivating()
	for i := 0; i < b.N; i++ {
		if _, err := static.Analyze(project, static.Options{Mode: static.Baseline}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtendedAnalysis times hint injection + solving.
func BenchmarkExtendedAnalysis(b *testing.B) {
	project := corpus.Motivating()
	ar, err := approx.Run(project, approx.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := static.Analyze(project, static.Options{Mode: static.WithHints, Hints: ar.Hints}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDynamicCallGraph times dynamic call-graph construction.
func BenchmarkDynamicCallGraph(b *testing.B) {
	project := corpus.Motivating()
	for i := 0; i < b.N; i++ {
		if _, err := dyncg.Build(project, dyncg.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParser times the front end on the whole motivating project.
func BenchmarkParser(b *testing.B) {
	project := corpus.Motivating()
	var total int
	for i := 0; i < b.N; i++ {
		for path, src := range project.Files {
			prog, err := parser.Parse(path, src)
			if err != nil {
				b.Fatal(err)
			}
			total += len(prog.Body)
		}
	}
	_ = total
}

// BenchmarkConcreteInterpreter times plain concrete execution of the
// motivating project (module loading + top-level code).
func BenchmarkConcreteInterpreter(b *testing.B) {
	project := corpus.Motivating()
	for i := 0; i < b.N; i++ {
		it := newInterp()
		registry := modules.NewRegistry(project, it)
		for _, e := range project.MainEntries {
			if _, err := registry.Load(e); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkScalability regenerates the size-vs-time curve supporting
// Table 3's scalability claim.
func BenchmarkScalability(b *testing.B) {
	bs := benchSlice(10)
	var rows []experiments.ScaleRow
	for i := 0; i < b.N; i++ {
		outs, err := experiments.RunCorpus(bs, false)
		if err != nil {
			b.Fatal(err)
		}
		rows = experiments.Scalability(outs)
	}
	for _, r := range rows {
		if r.Projects > 0 {
			b.ReportMetric(float64(r.AvgApprox.Microseconds())/1000, "approx-ms-"+r.Tier[:4])
		}
	}
}
